"""64-qubit byte-identity suite (ISSUE 6 acceptance).

Recompiles every pinned ``tests/pipeline/fixtures/golden64.json`` entry —
64-logical-qubit grid and heavy-hex instances across all registered
methods — and asserts the serialised circuit is *byte-identical* to the
fixture (sha256 over the canonical JSON form).  This is the safety net
that lets the numpy hot-path rewrite claim it is a pure restructure.

If a fixture mismatch is intentional (a real behaviour change), rerun
``tests/pipeline/fixtures/generate.py`` and explain the change in the
commit message.
"""

import json
from pathlib import Path

import pytest

from repro.arch import grid
from repro.arch.heavyhex import heavyhex_for
from repro.compiler import compile_qaoa
from repro.problems import random_problem_graph

from repro.ir.serialize import program_to_dict

from .fixtures.generate import (ARCHITECTURES, PROBLEMS, PROGRAM_ARCH,
                                PROGRAM_LAYERS, PROGRAM_METHODS,
                                PROGRAM_PROBLEM, circuit_digest)

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden64.json"
DOCUMENT = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
PROGRAM_FIXTURE_PATH = (Path(__file__).parent / "fixtures"
                        / "golden_program16.json")
PROGRAM_DOCUMENT = json.loads(
    PROGRAM_FIXTURE_PATH.read_text(encoding="utf-8"))

ARCH_FACTORIES = dict(ARCHITECTURES)
PROBLEM_SPECS = {label: (n, density, seed)
                 for label, n, density, seed in PROBLEMS}

assert ARCH_FACTORIES.keys() == {"grid-8x8", "heavyhex-64"}


def _params():
    for index, entry in enumerate(DOCUMENT["entries"]):
        label = f"{entry['arch']}-{entry['problem']}-{entry['method']}"
        yield pytest.param(index, id=label)


class TestGolden64:
    def test_fixtures_are_fresh(self):
        """The fixture file must cover every (arch, problem) pair."""
        seen = {(e["arch"], e["problem"]) for e in DOCUMENT["entries"]}
        assert seen == {(a, p) for a in ARCH_FACTORIES
                        for p in PROBLEM_SPECS}

    @pytest.mark.parametrize("index", _params())
    def test_circuit_byte_identical(self, index):
        entry = DOCUMENT["entries"][index]
        coupling = ARCH_FACTORIES[entry["arch"]]()
        n, density, seed = PROBLEM_SPECS[entry["problem"]]
        problem = random_problem_graph(n, density, seed=seed)
        options = DOCUMENT["method_options"].get(entry["method"], {})
        result = compile_qaoa(coupling, problem, method=entry["method"],
                              gamma=DOCUMENT["gamma"], **options)
        assert result.depth() == entry["depth"]
        assert result.circuit.cx_count(unify=True) == entry["cx"]
        assert result.circuit.swap_count == entry["swaps"]
        assert circuit_digest(result.circuit) == entry["sha256"], (
            f"{entry['method']} on {entry['arch']}/{entry['problem']} no "
            "longer produces a byte-identical circuit; if intentional, "
            "regenerate tests/pipeline/fixtures/golden64.json")


class TestGoldenProgram16:
    """p=3 grid-16 program pinned gate-for-gate (ISSUE 7 satellite)."""

    def _problem(self):
        _, n, density, seed = PROGRAM_PROBLEM
        return random_problem_graph(n, density, seed=seed)

    @pytest.mark.parametrize(
        "entry", PROGRAM_DOCUMENT["entries"],
        ids=[e["method"] for e in PROGRAM_DOCUMENT["entries"]])
    def test_program_gate_for_gate(self, entry):
        coupling = PROGRAM_ARCH[1]()
        result = compile_qaoa(coupling, self._problem(),
                              method=entry["method"],
                              gamma=PROGRAM_DOCUMENT["gamma"],
                              layers=PROGRAM_DOCUMENT["layers"])
        assert circuit_digest(result.circuit) == entry["cost_sha256"]
        assert program_to_dict(result.program) == entry["program"], (
            f"p={PROGRAM_LAYERS} program for {entry['method']} drifted "
            "from golden_program16.json; if intentional, regenerate it")

    @pytest.mark.parametrize("method", PROGRAM_METHODS)
    def test_cost_layer_invariant_under_layers(self, method):
        """``result.circuit`` is byte-identical for any ``layers``."""
        problem = self._problem()
        base = compile_qaoa(PROGRAM_ARCH[1](), problem, method=method,
                            gamma=PROGRAM_DOCUMENT["gamma"])
        layered = compile_qaoa(PROGRAM_ARCH[1](), problem, method=method,
                               gamma=PROGRAM_DOCUMENT["gamma"],
                               layers=PROGRAM_LAYERS)
        assert circuit_digest(base.circuit) == circuit_digest(layered.circuit)
        assert base.initial_mapping.log_to_phys == \
            layered.initial_mapping.log_to_phys
        # p=1 compiles carry a program too; its cost layer is the
        # compiled circuit *object*, reused verbatim.
        assert base.program is not None and base.program.p == 1
        assert base.program.layers[0].circuit is base.circuit
