#!/usr/bin/env python
"""Regenerate ``golden64.json`` — the 64-qubit byte-identity fixtures.

Every registered compiler method is run on fixed 64-logical-qubit
instances (an 8x8 grid and the smallest heavy-hex holding 64 qubits,
each with a denser single-component problem and a sparser
multi-component one) and the sha256 of the canonically serialised
circuit is pinned, together with depth / CX / swap counts for
debuggability.  The equivalence suite
(``tests/pipeline/test_golden_fixtures.py``) recompiles each entry and
asserts the hash — i.e. the *byte-identical* circuit — is unchanged.

The fixtures exist so performance rewrites of the hot path (numpy
bitsets, vectorized pattern execution, incremental range detection) can
prove they are pure restructures.  Regenerate **only** when an
intentional behaviour change lands, and say so in the commit message::

    PYTHONPATH=src python tests/pipeline/fixtures/generate.py

``optimal`` is excluded (exact solver; 64q is far beyond its reach).
``olsq`` runs with a reduced search budget so the suite stays fast; the
knobs are part of the fixture and applied identically at test time.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

FIXTURE_DIR = Path(__file__).resolve().parent
REPO_ROOT = FIXTURE_DIR.parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch import grid  # noqa: E402
from repro.arch.heavyhex import heavyhex_for  # noqa: E402
from repro.compiler import compile_qaoa  # noqa: E402
from repro.ir.serialize import circuit_to_dict, program_to_dict  # noqa: E402
from repro.problems import random_problem_graph  # noqa: E402

GAMMA = 0.4

#: The p-layer program fixture (``golden_program16.json``): a 4x4-grid
#: 16-qubit instance assembled into a p=3 program per paper method.  The
#: *entire* serialized program is pinned — gate for gate, mapping for
#: mapping — not just a digest, so a drift diff is readable.
PROGRAM_ARCH = ("grid-4x4", lambda: grid(4, 4))
PROGRAM_PROBLEM = ("rand-16-0.3-s7", 16, 0.3, 7)
PROGRAM_LAYERS = 3
PROGRAM_METHODS = ("hybrid", "greedy", "ata")

#: (label, factory) — instantiated fresh for every compilation.
ARCHITECTURES = (
    ("grid-8x8", lambda: grid(8, 8)),
    ("heavyhex-64", lambda: heavyhex_for(64)),
)

#: (label, n, density, seed).  0.08/seed 7 is a single dense component;
#: 0.03/seed 13 splits into several components, exercising range
#: detection and region merging in the ATA suffix.
PROBLEMS = (
    ("rand-64-0.08-s7", 64, 0.08, 7),
    ("rand-64-0.03-s13", 64, 0.03, 13),
)

#: method -> extra compile options (fixture contract, applied at test time).
METHOD_OPTIONS = {
    "olsq": {"exact_node_budget": 2_000, "beam_width": 24,
             "children_per_state": 16},
}

#: Methods never run at 64 qubits.
EXCLUDED_METHODS = ("optimal",)


def circuit_digest(circuit) -> str:
    import hashlib

    payload = json.dumps(circuit_to_dict(circuit), sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def main() -> int:
    from repro.pipeline.registry import available_methods

    methods = [m for m in available_methods() if m not in EXCLUDED_METHODS]
    entries = []
    for arch_label, arch_factory in ARCHITECTURES:
        for prob_label, n, density, seed in PROBLEMS:
            coupling = arch_factory()
            problem = random_problem_graph(n, density, seed=seed)
            for method in methods:
                options = METHOD_OPTIONS.get(method, {})
                result = compile_qaoa(coupling, problem, method=method,
                                      gamma=GAMMA, **options)
                result.validate(coupling, problem)
                entry = {
                    "arch": arch_label,
                    "problem": prob_label,
                    "method": method,
                    "sha256": circuit_digest(result.circuit),
                    "depth": result.depth(),
                    "cx": result.circuit.cx_count(unify=True),
                    "swaps": result.circuit.swap_count,
                }
                entries.append(entry)
                print(f"{arch_label:12s} {prob_label:18s} {method:12s} "
                      f"depth={entry['depth']:4d} cx={entry['cx']:5d} "
                      f"{entry['sha256'][:12]}", flush=True)

    document = {
        "generated_by": "tests/pipeline/fixtures/generate.py",
        "gamma": GAMMA,
        "method_options": METHOD_OPTIONS,
        "entries": entries,
    }
    out = FIXTURE_DIR / "golden64.json"
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {len(entries)} entries to {out}")
    write_program_fixture()
    return 0


def write_program_fixture() -> None:
    """Pin the p=3 grid-16 program gate-for-gate per paper method."""
    arch_label, arch_factory = PROGRAM_ARCH
    prob_label, n, density, seed = PROGRAM_PROBLEM
    entries = []
    for method in PROGRAM_METHODS:
        coupling = arch_factory()
        problem = random_problem_graph(n, density, seed=seed)
        result = compile_qaoa(coupling, problem, method=method,
                              gamma=GAMMA, layers=PROGRAM_LAYERS)
        result.validate(coupling, problem)
        program = result.program
        entries.append({
            "method": method,
            "cost_sha256": circuit_digest(result.circuit),
            "program": program_to_dict(program),
        })
        print(f"{arch_label:12s} {prob_label:18s} {method:12s} "
              f"p={program.p} layers={len(program.layers)} "
              f"ops={program.n_ops()}", flush=True)
    document = {
        "generated_by": "tests/pipeline/fixtures/generate.py",
        "arch": arch_label,
        "problem": prob_label,
        "gamma": GAMMA,
        "layers": PROGRAM_LAYERS,
        "entries": entries,
    }
    out = FIXTURE_DIR / "golden_program16.json"
    out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {len(entries)} program entries to {out}")


if __name__ == "__main__":
    sys.exit(main())
