"""Pipeline mechanics: pass records, timings, callbacks, skipping."""

import pytest

from repro.arch import grid
from repro.pipeline import (CompilationContext, Pass, PatternPass, Pipeline,
                            PlacementPass, build_context, build_pipeline)
from repro.problems import random_problem_graph


def make_context(**knobs):
    coupling = grid(4, 4)
    problem = random_problem_graph(10, 0.35, seed=2)
    return CompilationContext(coupling=coupling, problem=problem,
                              knobs=knobs)


class CountingPass(Pass):
    name = "counting"

    def __init__(self, skip=False):
        self.skip = skip
        self.calls = 0

    def run(self, context):
        self.calls += 1
        if self.skip:
            return False
        return True


class TestPipelineRun:
    def test_passes_run_in_order_with_records(self):
        first, second = CountingPass(), CountingPass()
        second.name = "second"
        context = make_context()
        Pipeline([first, second]).run(context)
        assert first.calls == second.calls == 1
        names = [r["name"] for r in context.extras["passes"]]
        assert names == ["counting", "second"]
        for record in context.extras["passes"]:
            assert record["wall_s"] >= 0.0
            assert "cache" in record and "skipped" in record

    def test_skipped_pass_recorded_but_not_timed(self):
        skipper = CountingPass(skip=True)
        context = make_context()
        Pipeline([skipper]).run(context)
        (record,) = context.extras["passes"]
        assert record["skipped"] is True
        assert "counting" not in context.extras["timings"]

    def test_stage_buckets_accumulate_across_passes(self):
        one, two = CountingPass(), CountingPass()
        two.name = "other"
        one.stage = two.stage = "shared"
        context = make_context()
        Pipeline([one, two]).run(context)
        assert set(context.extras["timings"]) == {"shared"}

    def test_on_pass_end_callback_sees_every_pass(self):
        seen = []
        pipeline = Pipeline(
            [PlacementPass(), PatternPass()],
            on_pass_end=lambda p, ctx, rec: seen.append((p.name,
                                                         rec["skipped"])))
        pipeline.run(make_context())
        assert seen == [("placement", False), ("pattern", False)]

    def test_supplied_mapping_skips_placement(self):
        context = make_context()
        PlacementPass().run(context)
        mapping = context.mapping
        again = CompilationContext(coupling=context.coupling,
                                   problem=context.problem, mapping=mapping)
        Pipeline([PlacementPass()]).run(again)
        assert again.extras["passes"][0]["skipped"] is True
        assert "placement" not in again.extras["timings"]
        assert again.mapping is mapping

    def test_compile_records_overall_cache_delta(self):
        context = build_context("greedy", grid(4, 4),
                                random_problem_graph(10, 0.35, seed=2))
        result = build_pipeline("greedy").compile(context)
        assert "cache" in result.extra
        assert result.wall_time_s > 0.0


class TestPlacementFallback:
    def test_noise_placement_without_model_warns_and_records(self):
        context = make_context(placement="noise")
        with pytest.warns(UserWarning, match="placement='noise'"):
            PlacementPass().run(context)
        fallback = context.extras["placement_fallback"]
        assert fallback["requested"] == "noise"
        assert fallback["used"] == "quadratic"
        assert context.mapping is not None

    def test_noise_placement_with_model_does_not_warn(self):
        import warnings

        from repro.arch import NoiseModel

        context = make_context(placement="noise")
        context.noise = NoiseModel(context.coupling, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PlacementPass().run(context)
        assert "placement_fallback" not in context.extras

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            PlacementPass().run(make_context(placement="magic"))


class TestContext:
    def test_require_names_missing_field(self):
        with pytest.raises(ValueError, match="context.mapping"):
            make_context().require("mapping")

    def test_knob_default(self):
        context = make_context(alpha=0.7)
        assert context.knob("alpha") == 0.7
        assert context.knob("max_predictions", 24) == 24
