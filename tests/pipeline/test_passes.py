"""LintPass and ValidatePass behaviour (ISSUE 3: pipeline integration)."""

import pytest

from repro._telemetry import clear_events, event_info
from repro.arch import line
from repro.exceptions import LintError, ValidationError
from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.pipeline import (CompilationContext, LintPass, ValidatePass,
                            build_pipeline)
from repro.problems import ProblemGraph


def make_context(ops, problem_edges, n=4, **knobs):
    """A post-compilation context with an explicit circuit."""
    context = CompilationContext(
        coupling=line(n), problem=ProblemGraph(n, problem_edges),
        knobs=knobs)
    context.mapping = Mapping.trivial(n)
    context.circuit = Circuit(n, ops)
    return context


GOOD = [Op.cphase(0, 1), Op.cphase(1, 2)]
GOOD_EDGES = [(0, 1), (1, 2)]
REPEATED = [Op.cphase(0, 1), Op.cphase(0, 1)]


class TestLintPass:
    def setup_method(self):
        clear_events()

    def test_clean_circuit_records_extras_and_events(self):
        context = make_context(GOOD, GOOD_EDGES)
        assert LintPass().run(context) is True
        payload = context.extras["lint"]
        assert payload["ok"] is True
        assert payload["counts"]["error"] == 0
        events = event_info()
        assert events["lint.runs"] == 1
        assert events["lint.errors"] == 0

    def test_findings_recorded_without_raising(self):
        context = make_context([Op.cphase(0, 1)], [(0, 1), (2, 3)])
        assert LintPass().run(context) is True
        payload = context.extras["lint"]
        assert payload["ok"] is False
        assert payload["by_rule"] == {"RL013": 1}
        assert event_info()["lint.errors"] == 1

    def test_fail_on_error_raises_after_recording(self):
        context = make_context([Op.cphase(0, 1)], [(0, 1), (2, 3)])
        with pytest.raises(LintError, match="RL013"):
            LintPass(fail_on_error=True).run(context)
        assert context.extras["lint"]["by_rule"] == {"RL013": 1}

    def test_lint_error_is_a_validation_error(self):
        # Existing except ValidationError handlers keep working.
        assert issubclass(LintError, ValidationError)

    def test_allow_repeats_knob_fallback(self):
        flagged = make_context(REPEATED, [(0, 1)])
        LintPass().run(flagged)
        assert flagged.extras["lint"]["by_rule"] == {"RL012": 1}

        allowed = make_context(REPEATED, [(0, 1)], allow_repeats=True)
        LintPass().run(allowed)
        assert allowed.extras["lint"]["ok"] is True

    def test_constructor_overrides_knob(self):
        context = make_context(REPEATED, [(0, 1)], allow_repeats=True)
        LintPass(allow_repeats=False).run(context)
        assert context.extras["lint"]["by_rule"] == {"RL012": 1}

    def test_select_and_ignore_scope_the_run(self):
        context = make_context([Op.cphase(0, 1)], [(0, 1), (2, 3)])
        LintPass(ignore=["RL013"]).run(context)
        assert context.extras["lint"]["ok"] is True


class TestValidatePass:
    def test_records_validate_extras(self):
        context = make_context(
            [Op.swap(1, 2), Op.cphase(0, 1), Op.cphase(1, 2)],
            [(0, 2), (1, 2)])
        assert ValidatePass().run(context) is True
        payload = context.extras["validate"]
        assert payload["n_edges"] == 2
        assert payload["n_cphase"] == 2
        assert payload["n_swap"] == 1
        assert payload["allow_repeats"] is False
        # swap(1, 2) moved logical 1 to physical 2 and logical 2 to 1.
        assert payload["final_log_to_phys"] == [0, 2, 1, 3]
        assert context.extras["validated_edges"] == 2

    def test_repeats_rejected_by_default(self):
        context = make_context(REPEATED, [(0, 1)])
        with pytest.raises(ValidationError, match="repeats"):
            ValidatePass().run(context)

    def test_allow_repeats_constructor(self):
        context = make_context(REPEATED, [(0, 1)])
        assert ValidatePass(allow_repeats=True).run(context) is True
        assert context.extras["validate"]["allow_repeats"] is True

    def test_allow_repeats_knob_fallback(self):
        context = make_context(REPEATED, [(0, 1)], allow_repeats=True)
        assert ValidatePass().run(context) is True


class TestBuildPipelineIntegration:
    def test_lint_and_validate_appended_in_order(self):
        pipeline = build_pipeline("hybrid", lint=True, validate=True)
        names = [p.name for p in pipeline.passes]
        # lint runs first so diagnostics survive a validation failure
        assert names[-2:] == ["lint", "validate"]

    def test_default_pipeline_has_neither(self):
        names = [p.name for p in build_pipeline("hybrid").passes]
        assert "lint" not in names
        assert "validate" not in names
