"""The single method registry: paper methods + baselines, one lookup."""

import pytest

from repro.arch import grid, line
from repro.pipeline.registry import (MethodSpec, _REGISTRY,
                                     available_methods, get_method,
                                     method_table, register_method)
from repro.problems import random_problem_graph

PAPER = ("hybrid", "greedy", "ata")
BASELINES = ("sabre", "qaim", "2qan", "paulihedral", "olsq", "satmap")


class TestLookup:
    def test_all_nine_methods_registered(self):
        methods = available_methods()
        for name in PAPER + BASELINES:
            assert name in methods

    def test_paper_methods_listed_first(self):
        assert available_methods()[:3] == PAPER

    def test_kinds(self):
        for name in PAPER:
            assert get_method(name).kind == "paper"
        for name in BASELINES:
            assert get_method(name).kind == "baseline"

    def test_twoqan_alias_resolves_to_2qan(self):
        assert get_method("twoqan") is get_method("2qan")
        assert "twoqan" not in available_methods()

    def test_unknown_method_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_method("magic")
        message = str(excinfo.value)
        assert "magic" in message
        for name in PAPER + BASELINES:
            assert name in message

    def test_method_table_has_descriptions(self):
        table = method_table()
        assert set(table) == set(available_methods())
        assert all(table.values())


class TestCompileThroughRegistry:
    @pytest.mark.parametrize("method", PAPER + BASELINES)
    def test_every_method_compiles_and_validates(self, method):
        coupling = grid(3, 3)
        problem = random_problem_graph(8, 0.35, seed=4)
        result = get_method(method).compile(coupling, problem)
        result.validate(coupling, problem)
        assert [r["name"] for r in result.extra["passes"]]

    def test_baseline_result_keeps_its_method_label(self):
        coupling = grid(3, 3)
        problem = random_problem_graph(8, 0.35, seed=4)
        result = get_method("sabre").compile(coupling, problem)
        assert result.method == "sabre"
        assert result.extra["passes"][0]["name"] == "sabre"
        assert "baseline" in result.extra["timings"]

    def test_baseline_receives_gamma(self):
        from repro.ir.gates import CPHASE

        coupling = line(4)
        problem = random_problem_graph(4, 0.8, seed=0)
        result = get_method("sabre").compile(coupling, problem, gamma=0.7)
        gates = [op for op in result.circuit if op.kind == CPHASE]
        assert gates and all(op.param == 0.7 for op in gates)

    def test_oversized_problem_rejected_for_any_method(self):
        from repro.problems import clique

        for method in ("hybrid", "sabre"):
            with pytest.raises(ValueError, match="has only"):
                get_method(method).compile(line(3), clique(5))

    def test_unknown_paper_knob_rejected(self):
        with pytest.raises(TypeError, match="bogus"):
            get_method("greedy").compile(grid(3, 3),
                                         random_problem_graph(8, 0.3,
                                                              seed=1),
                                         bogus=1)

    def test_optimal_method_carries_solver_telemetry(self):
        from repro.problems import clique

        coupling = line(4)
        problem = clique(4)
        result = get_method("optimal").compile(coupling, problem)
        result.validate(coupling, problem)
        assert result.method == "optimal"
        solver = result.extra["solver"]
        assert solver["depth"] == 6  # clique-4 on a line, provably minimal
        assert solver["nodes_expanded"] > 0
        assert solver["strategy"] == "astar"
        assert result.extra["passes"][0]["name"] == "solve"

    def test_optimal_method_forwards_knobs(self):
        from repro.exceptions import SolverError
        from repro.problems import clique

        result = get_method("optimal").compile(
            line(4), clique(4), strategy="idastar", minimize_swaps=True)
        assert result.extra["solver"]["strategy"] == "idastar"
        # fallback=None disables the graceful greedy degradation, so the
        # budget blowup surfaces as the historic hard SolverError.
        with pytest.raises(SolverError, match="node budget"):
            get_method("optimal").compile(line(5), clique(5), max_nodes=3,
                                          fallback=None)

    def test_optimal_method_degrades_by_default(self):
        from repro.problems import clique

        result = get_method("optimal").compile(line(5), clique(5),
                                               max_nodes=3)
        assert result.extra["degraded"]["fallback"] == "greedy"
        assert result.method == "optimal"


class TestCustomRegistration:
    def test_one_registration_reaches_facade_and_batch(self):
        """Adding a method is ONE register_method call, not five edits."""
        from repro.batch import BatchJob
        from repro.compiler import compile_qaoa

        def runner(coupling, problem, noise, gamma, on_pass_end, options):
            return get_method("greedy").runner(coupling, problem, noise,
                                               gamma, on_pass_end, options)

        register_method(MethodSpec("custom-test", "paper", runner,
                                   "test-only clone of greedy"))
        try:
            coupling = grid(3, 3)
            problem = random_problem_graph(8, 0.35, seed=4)
            # facade
            result = compile_qaoa(coupling, problem, method="custom-test")
            result.validate(coupling, problem)
            # batch spec validation resolves through the same registry
            BatchJob(arch="grid", n_qubits=8, method="custom-test")
        finally:
            del _REGISTRY["custom-test"]
