"""Pipeline equivalence suite (ISSUE 2 acceptance).

The pass-pipeline refactor must be a pure restructure: for the hybrid,
greedy and ata presets on line, grid and heavy-hex architectures with
fixed seeds, the selected circuits must have *identical* depth and CX
count to the pre-refactor ``compile_qaoa``.  The golden numbers below
were captured from the monolithic implementation (commit 309c8d3)
immediately before the pipeline landed.
"""

import pytest

from repro.arch import grid, heavyhex, line
from repro.compiler import compile_qaoa
from repro.pipeline import ValidatePass, build_context, build_pipeline
from repro.problems import random_problem_graph

ARCHES = {
    "line": lambda: line(12),
    "grid": lambda: grid(4, 4),
    "heavyhex": lambda: heavyhex(2, 6),
}

#: (arch, seed, method) -> (depth, cx) from the pre-pipeline compiler.
GOLDEN = {
    ("line", 3, "hybrid"): (17, 118),
    ("line", 3, "greedy"): (17, 118),
    ("line", 3, "ata"): (18, 151),
    ("line", 11, "hybrid"): (17, 137),
    ("line", 11, "greedy"): (17, 137),
    ("line", 11, "ata"): (20, 168),
    ("grid", 3, "hybrid"): (11, 75),
    ("grid", 3, "greedy"): (11, 75),
    ("grid", 3, "ata"): (16, 156),
    ("grid", 11, "hybrid"): (9, 70),
    ("grid", 11, "greedy"): (9, 70),
    ("grid", 11, "ata"): (17, 143),
    ("heavyhex", 3, "hybrid"): (17, 95),
    ("heavyhex", 3, "greedy"): (17, 95),
    ("heavyhex", 3, "ata"): (20, 189),
    ("heavyhex", 11, "hybrid"): (15, 88),
    ("heavyhex", 11, "greedy"): (15, 88),
    ("heavyhex", 11, "ata"): (21, 203),
}

#: The pre-refactor ``extra["timings"]`` keys per method — preserved.
EXPECTED_STAGES = {
    "hybrid": {"placement", "pattern", "prediction", "greedy", "selection",
               "assembly"},
    "greedy": {"placement", "greedy", "assembly"},
    "ata": {"placement", "pattern", "prediction", "assembly"},
}


def make_problem(coupling, seed):
    return random_problem_graph(min(coupling.n_qubits, 12), 0.35, seed=seed)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("arch,seed,method", sorted(GOLDEN))
    def test_depth_and_cx_match_pre_refactor(self, arch, seed, method):
        coupling = ARCHES[arch]()
        problem = make_problem(coupling, seed)
        result = compile_qaoa(coupling, problem, method=method)
        result.validate(coupling, problem)
        assert (result.depth(), result.gate_count) == \
            GOLDEN[(arch, seed, method)]


class TestTelemetryContract:
    @pytest.mark.parametrize("method", ["hybrid", "greedy", "ata"])
    @pytest.mark.parametrize("arch", sorted(ARCHES))
    def test_timings_keys_preserved_and_passes_added(self, arch, method):
        coupling = ARCHES[arch]()
        result = compile_qaoa(coupling, make_problem(coupling, 3),
                              method=method)
        assert set(result.extra["timings"]) == EXPECTED_STAGES[method]
        passes = result.extra["passes"]
        assert passes, "every result must gain per-pass records"
        for record in passes:
            assert set(record) >= {"name", "wall_s", "cache", "skipped"}
            assert record["wall_s"] >= 0.0

    def test_hybrid_extras_unchanged(self):
        coupling = grid(4, 4)
        result = compile_qaoa(coupling, make_problem(coupling, 3))
        for key in ("selected", "n_candidates", "scores", "candidates",
                    "prediction_times_s", "timings", "cache", "passes"):
            assert key in result.extra, key


class TestValidatePass:
    def test_rejects_semantically_wrong_circuit(self):
        from repro.exceptions import ValidationError
        from repro.pipeline import Pass

        class DropOps(Pass):
            """Sabotage: replace the compiled circuit with an empty one,
            so the validator sees every problem gate missing."""

            name = "drop-ops"

            def run(self, ctx):
                ctx.circuit = type(ctx.circuit)(ctx.coupling.n_qubits)
                return True

        coupling = grid(3, 3)
        problem = random_problem_graph(8, 0.35, seed=4)
        context = build_context("greedy", coupling, problem)
        pipeline = build_pipeline("greedy", validate=True)
        assert isinstance(pipeline.passes[-1], ValidatePass)
        pipeline.passes.insert(-1, DropOps())
        with pytest.raises(ValidationError):
            pipeline.compile(context)

    def test_accepts_correct_circuit(self):
        coupling = grid(3, 3)
        problem = random_problem_graph(8, 0.35, seed=4)
        context = build_context("greedy", coupling, problem)
        result = build_pipeline("greedy", validate=True).compile(context)
        assert result.extra["validated_edges"] == problem.n_edges
        assert result.extra["passes"][-1]["name"] == "validate"
