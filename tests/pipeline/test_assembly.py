"""Program assembly: reversed-layer cancellation vs naive repetition.

The property at the heart of ISSUE 7: the flattened p-layer program is
logically equivalent to the naive construction — p copies of the
compiled cost layer with explicit remapping SWAPs spliced between them —
while containing strictly fewer ops whenever the layer permutation is
nontrivial.  Circuits here contain only CPHASE (diagonal) and SWAP
(permutation) gates, so logical equivalence is exact and checkable
without simulation: equal multisets of *logical* CPHASE applications
plus equal net qubit permutations.
"""

from collections import Counter

import pytest

from repro.arch import architecture_for
from repro.compiler import compile_qaoa
from repro.ir.circuit import Circuit
from repro.ir.gates import CPHASE, SWAP, Op
from repro.ir.mapping import Mapping
from repro.pipeline.assembly import AssemblyPass, assemble_program
from repro.problems import random_problem_graph, weighted_random_problem_graph

GAMMA = 0.4


def logical_content(ops, mapping):
    """(multiset of logical CPHASE applications, final layout tuple).

    Walks physical ``ops`` from ``mapping`` (not mutated), resolving
    each CPHASE to its logical edge under the layout at that moment.
    """
    current = mapping.copy()
    gates = Counter()
    for op in ops:
        if op.kind == CPHASE:
            lu = current.logical(op.qubits[0])
            lv = current.logical(op.qubits[1])
            assert lu is not None and lv is not None
            gates[(min(lu, lv), max(lu, lv), round(op.param, 12))] += 1
        elif op.kind == SWAP:
            current.swap_physical(*op.qubits)
    return gates, tuple(current.log_to_phys)


def restore_ops(current, target):
    """Minimal transpositions taking layout ``current`` to ``target``."""
    work = current.copy()
    ops = []
    for q in range(work.n_logical):
        if work.log_to_phys[q] != target.log_to_phys[q]:
            a, b = work.log_to_phys[q], target.log_to_phys[q]
            work.swap_physical(a, b)
            ops.append(Op.swap(a, b))
    assert work.log_to_phys == target.log_to_phys
    return ops


def naive_repetition(circuit, mapping, p):
    """p copies of the compiled layer + explicit remapping between them."""
    ops = []
    current = mapping.copy()
    for k in range(p):
        if k > 0:
            # Re-home every logical qubit so the next verbatim copy of
            # the physical layer implements the intended logical edges.
            back = restore_ops(current, mapping)
            ops.extend(back)
            current = mapping.copy()
        ops.extend(circuit.ops)
        for op in circuit.ops:
            if op.kind == SWAP:
                current.swap_physical(*op.qubits)
    return Circuit.from_ops_unchecked(circuit.n_qubits, ops), current


CASES = [("grid", 16, 0.3, 7), ("grid", 9, 0.35, 2),
         ("heavyhex", 12, 0.3, 0), ("line", 8, 0.4, 5)]


class TestReversedLayerProperty:
    @pytest.mark.parametrize("arch,n,density,seed", CASES)
    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_flatten_equivalent_to_naive_repetition(self, arch, n,
                                                    density, seed, p):
        coupling = architecture_for(arch, n)
        problem = random_problem_graph(n, density, seed=seed)
        result = compile_qaoa(coupling, problem, method="hybrid",
                              gamma=GAMMA, layers=p, mixer="none")
        program = result.program
        mapping = result.initial_mapping

        flat_gates, flat_final = logical_content(
            program.flatten().ops, mapping)
        naive, naive_mapping = naive_repetition(result.circuit, mapping, p)
        naive_gates, naive_final = logical_content(naive.ops, mapping)

        # Same logical CPHASE multiset: every edge phased p times at the
        # compile angle, independent of construction.
        assert flat_gates == naive_gates
        expected = Counter({(u, v, round(GAMMA, 12)): p
                            for u, v in problem.edges})
        assert flat_gates == expected

        # Bring both to the same layout; CPHASE-only content plus equal
        # permutations == full logical equivalence.
        assert flat_final == tuple(program.final_log_to_phys)
        assert naive_final == tuple(naive_mapping.log_to_phys)
        if p % 2 == 0:
            assert program.net_permutation_is_identity

    @pytest.mark.parametrize("arch,n,density,seed", CASES)
    @pytest.mark.parametrize("p", [2, 3])
    def test_strictly_fewer_ops_than_naive(self, arch, n, density, seed, p):
        coupling = architecture_for(arch, n)
        problem = random_problem_graph(n, density, seed=seed)
        result = compile_qaoa(coupling, problem, method="hybrid",
                              gamma=GAMMA, layers=p, mixer="none")
        single_perm_trivial = (
            logical_content(result.circuit.ops,
                            result.initial_mapping)[1]
            == tuple(result.initial_mapping.log_to_phys))
        naive, _ = naive_repetition(result.circuit,
                                    result.initial_mapping, p)
        assert result.program.n_ops() == p * len(result.circuit)
        if single_perm_trivial:
            assert result.program.n_ops() == len(naive)
        else:
            assert result.program.n_ops() < len(naive)


class TestAssembleProgram:
    def _compiled(self, weighted=False):
        coupling = architecture_for("grid", 9)
        problem = (weighted_random_problem_graph(9, 0.35, seed=2) if weighted
                   else random_problem_graph(9, 0.35, seed=2))
        result = compile_qaoa(coupling, problem, method="hybrid",
                              gamma=GAMMA)
        return result, problem

    def test_p1_reuses_circuit_object(self):
        result, problem = self._compiled()
        program = assemble_program(result.circuit, result.initial_mapping,
                                   layers=1, compile_gamma=GAMMA,
                                   problem=problem)
        assert program.layers[0].circuit is result.circuit

    def test_reversed_layers_reuse_reversed_ops(self):
        result, problem = self._compiled()
        program = assemble_program(result.circuit, result.initial_mapping,
                                   layers=2, mixer="none",
                                   compile_gamma=GAMMA, problem=problem)
        assert list(program.layers[1].circuit.ops) == \
            list(result.circuit.ops)[::-1]

    def test_custom_gammas_reangle(self):
        result, problem = self._compiled()
        program = assemble_program(result.circuit, result.initial_mapping,
                                   layers=2, mixer="none",
                                   gammas=[0.7, 0.9], compile_gamma=GAMMA,
                                   problem=problem)
        for layer, angle in zip(program.layers, (0.7, 0.9)):
            assert layer.param == angle
            cphases = [op for op in layer.circuit.ops if op.kind == CPHASE]
            assert cphases and all(op.param == angle for op in cphases)

    def test_weighted_reangles_per_edge(self):
        result, problem = self._compiled(weighted=True)
        program = assemble_program(result.circuit, result.initial_mapping,
                                   layers=1, mixer="none",
                                   gammas=[0.5], compile_gamma=GAMMA,
                                   problem=problem)
        layer = program.layers[0]
        gates, _ = logical_content(layer.circuit.ops,
                                   result.initial_mapping)
        for (u, v, angle), _count in gates.items():
            assert angle == round(0.5 * problem.weight(u, v), 12)

    def test_mixer_wall_covers_homes(self):
        result, problem = self._compiled()
        program = assemble_program(result.circuit, result.initial_mapping,
                                   layers=1, mixer="rx",
                                   betas=[0.3], compile_gamma=GAMMA,
                                   problem=problem)
        wall = program.layers[1]
        assert wall.role == "mixer"
        assert wall.param == 0.3
        homes = {op.qubits[0] for op in wall.circuit.ops}
        assert homes == set(wall.input_log_to_phys)
        assert all(op.param == 0.6 for op in wall.circuit.ops)

    def test_argument_validation(self):
        result, problem = self._compiled()
        args = (result.circuit, result.initial_mapping)
        with pytest.raises(ValueError, match="layers"):
            assemble_program(*args, layers=0)
        with pytest.raises(ValueError, match="mixer"):
            assemble_program(*args, mixer="ry")
        with pytest.raises(ValueError, match="gammas"):
            assemble_program(*args, layers=2, gammas=[0.1])
        with pytest.raises(ValueError, match="betas"):
            assemble_program(*args, layers=2, betas=[0.1, 0.2, 0.3])


class TestKnobRouting:
    """layers/mixer reach every registry method, paper or baseline."""

    @pytest.mark.parametrize("method", ["hybrid", "greedy", "ata", "sabre"])
    def test_program_attached_and_cost_layer_stable(self, method):
        coupling = architecture_for("grid", 9)
        problem = random_problem_graph(9, 0.35, seed=2)
        base = compile_qaoa(coupling, problem, method=method, gamma=GAMMA)
        layered = compile_qaoa(coupling, problem, method=method,
                               gamma=GAMMA, layers=2, mixer="none")
        assert base.program is not None and base.program.p == 1
        assert layered.program.p == 2
        assert layered.program.mixer == "none"
        assert list(base.circuit.ops) == list(layered.circuit.ops)
        assert layered.extra["program"]["net_permutation_identity"]
        layered.validate(coupling, problem)

    def test_assembly_pass_constructor_overrides_knobs(self):
        from repro.pipeline.context import CompilationContext

        coupling = architecture_for("grid", 9)
        problem = random_problem_graph(9, 0.35, seed=2)
        result = compile_qaoa(coupling, problem, method="hybrid",
                              gamma=GAMMA)
        context = CompilationContext(
            coupling=coupling, problem=problem, gamma=GAMMA,
            method="hybrid", knobs={"layers": 5})
        context.circuit = result.circuit
        context.mapping = result.initial_mapping
        AssemblyPass(layers=3, mixer="none").run(context)
        assert context.program.p == 3
        assert context.extras["program"]["p"] == 3
