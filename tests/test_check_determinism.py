"""Tests for scripts/check_determinism.py (the CI determinism lint)."""

import importlib.util
import pathlib
import textwrap

import pytest

SCRIPT = (pathlib.Path(__file__).parent.parent / "scripts"
          / "check_determinism.py")

spec = importlib.util.spec_from_file_location("check_determinism", SCRIPT)
checker = importlib.util.module_from_spec(spec)
spec.loader.exec_module(checker)


def findings(source):
    return checker.check_source(textwrap.dedent(source), "mod.py")


class TestFlagged:
    def test_for_over_set_call(self):
        assert findings("""
            for x in set(items):
                use(x)
        """)

    def test_for_over_set_literal_and_comprehension(self):
        assert findings("for x in {1, 2}:\n    use(x)\n")
        assert findings("for x in {q for q in items}:\n    use(x)\n")

    def test_comprehension_over_set(self):
        assert findings("out = [f(x) for x in frozenset(items)]\n")

    def test_name_assigned_a_set(self):
        assert findings("""
            pending = set(edges)
            for e in pending:
                use(e)
        """)

    def test_set_algebra_result(self):
        assert findings("""
            remaining = set(a) - set(b)
            for e in remaining:
                use(e)
        """)

    def test_dict_keys_call(self):
        assert findings("for k in d.keys():\n    use(k)\n")


class TestClean:
    def test_sorted_wrapping(self):
        assert not findings("for x in sorted(set(items)):\n    use(x)\n")

    def test_plain_dict_iteration(self):
        assert not findings("for k in d:\n    use(k)\n")

    def test_list_iteration(self):
        assert not findings("""
            items = list(things)
            for x in items:
                use(x)
        """)

    def test_reassignment_clears_set_taint(self):
        assert not findings("""
            pending = set(edges)
            pending = sorted(pending)
            for e in pending:
                use(e)
        """)

    def test_set_comprehension_target_not_flagged(self):
        # Building a set from a set never observes iteration order.
        assert not findings("out = {f(x) for x in set(items)}\n")

    def test_function_scope_does_not_leak(self):
        assert not findings("""
            def inner():
                pending = set(edges)

            def outer():
                pending = list(edges)
                for e in pending:
                    use(e)
        """)

    def test_suppression_comment(self):
        assert not findings("""
            for x in set(items):  # det: ok
                use(x)
        """)


class TestMain:
    def test_repo_hot_paths_are_clean(self):
        # The CI gate: the compiler hot paths must stay finding-free.
        assert checker.main([]) == 0

    def test_solver_is_a_default_hot_path(self):
        # The optimal solver's output is part of the determinism
        # contract (ISSUE 4 satellite S1).
        assert "src/repro/solver" in checker.DEFAULT_HOT_PATHS

    def test_exit_1_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("for x in set(items):\n    use(x)\n")
        assert checker.main([str(bad)]) == 1
        captured = capsys.readouterr()
        assert "bad.py:1" in captured.out
        assert "1 nondeterministic-iteration finding(s)" in captured.err

    def test_exit_2_on_missing_path(self, capsys):
        assert checker.main(["no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_syntax_error_reported_as_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert checker.main([str(bad)]) == 1


@pytest.mark.parametrize("snippet", [
    "x = sorted(set(items))\n",
    "n = len(set(items))\n",
    "total = sum(set(values))\n",
])
def test_order_insensitive_consumers_not_flagged(snippet):
    assert not findings(snippet)
