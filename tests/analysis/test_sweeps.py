"""Tests for the programmatic sweep API."""

import pytest

from repro.analysis import make_workload, run_sweep
from repro.compiler import compile_qaoa


COMPILERS = {
    "greedy": lambda c, p: compile_qaoa(c, p, method="greedy"),
    "ata": lambda c, p: compile_qaoa(c, p, method="ata"),
}


class TestMakeWorkload:
    def test_random(self):
        g = make_workload("rand", 12, 0.3, seed=0)
        assert g.n_vertices == 12

    def test_regular(self):
        g = make_workload("reg", 12, 0.3, seed=0)
        assert len(set(g.degrees().values())) == 1

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_workload("tree", 12, 0.3, seed=0)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sweep(["line", "grid"], [("rand", 8, 0.4)],
                         COMPILERS, seeds=(0, 1))

    def test_point_count(self, sweep):
        assert len(sweep.points) == 2 * 1 * 2  # arch x workload x compiler

    def test_lookup(self, sweep):
        point = sweep.get("line", "rand-8-0.4", "greedy")
        assert point.depth > 0
        assert point.n_seeds == 2

    def test_lookup_missing(self, sweep):
        with pytest.raises(KeyError):
            sweep.get("line", "rand-8-0.4", "magic")

    def test_compilers_order(self, sweep):
        assert sweep.compilers() == ["greedy", "ata"]

    def test_rows_shape(self, sweep):
        rows = sweep.rows("cx")
        assert len(rows) == 2  # one per (arch, workload)
        assert len(rows[0]) == 3  # label + 2 compilers

    def test_metrics_are_averages(self):
        single = run_sweep(["line"], [("rand", 8, 0.4)], COMPILERS,
                           seeds=(0,))
        point = single.get("line", "rand-8-0.4", "greedy")
        assert point.n_seeds == 1


class TestBatchedSweep:
    """Method-name strings route the sweep through the batch engine."""

    def test_string_compilers_produce_points(self):
        sweep = run_sweep(["line", "grid"], [("rand", 8, 0.4)],
                          {"greedy": "greedy", "ata": "ata"}, seeds=(0, 1))
        assert len(sweep.points) == 4
        assert sweep.compilers() == ["greedy", "ata"]
        point = sweep.get("line", "rand-8-0.4", "greedy")
        assert point.depth > 0
        assert point.n_seeds == 2

    def test_matches_legacy_callable_results(self):
        legacy = run_sweep(["grid"], [("rand", 8, 0.4)], COMPILERS,
                           seeds=(0, 1))
        batched = run_sweep(["grid"], [("rand", 8, 0.4)],
                            {"greedy": "greedy", "ata": "ata"}, seeds=(0, 1))
        for compiler in ("greedy", "ata"):
            old = legacy.get("grid", "rand-8-0.4", compiler)
            new = batched.get("grid", "rand-8-0.4", compiler)
            assert new.depth == old.depth
            assert new.cx == old.cx

    def test_failed_cell_raises_with_job_name(self):
        with pytest.raises(RuntimeError, match="mumbai"):
            run_sweep(["mumbai"], [("rand", 100, 0.3)],
                      {"greedy": "greedy"})

    def test_workers_with_callables_rejected(self):
        with pytest.raises(ValueError, match="picklable"):
            run_sweep(["line"], [("rand", 8, 0.4)], COMPILERS, workers=4)
