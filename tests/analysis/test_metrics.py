"""Tests for analysis metrics and table formatting."""

import pytest

from repro.analysis import (format_table, geometric_mean, normalize,
                            reduction, result_metrics)
from repro.arch import NoiseModel, line
from repro.compiler import compile_qaoa
from repro.problems import clique


class TestReduction:
    def test_half_reduction(self):
        assert reduction(50, 100) == pytest.approx(0.5)

    def test_no_reduction(self):
        assert reduction(100, 100) == pytest.approx(0.0)

    def test_negative_when_worse(self):
        assert reduction(150, 100) == pytest.approx(-0.5)

    def test_zero_baseline(self):
        assert reduction(10, 0) == 0.0


class TestNormalize:
    def test_normalises_to_reference(self):
        norm = normalize({"greedy": 10.0, "ours": 5.0}, "greedy")
        assert norm == {"greedy": 1.0, "ours": 0.5}

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0, "b": 1.0}, "a")


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestResultMetrics:
    def test_contains_core_fields(self):
        coupling = line(5)
        result = compile_qaoa(coupling, clique(5))
        metrics = result_metrics(result)
        assert set(metrics) == {"depth", "cx", "swaps", "time_s"}
        assert metrics["depth"] > 0

    def test_esp_with_noise(self):
        coupling = line(5)
        noise = NoiseModel(coupling)
        result = compile_qaoa(coupling, clique(5), noise=noise)
        metrics = result_metrics(result, noise)
        assert 0 < metrics["esp"] < 1


class TestFormatTable:
    def test_alignment_and_header(self):
        table = format_table(["name", "value"],
                             [["a", 1.0], ["long-name", 123456.0]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_float_formatting(self):
        table = format_table(["x"], [[0.123456], [12.3], [1234.5]])
        assert "0.123" in table
        assert "12.30" in table
        assert "1234" in table
