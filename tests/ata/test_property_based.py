"""Property-based tests over the pattern/executor stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import grid, line
from repro.ata import compile_with_pattern, get_pattern
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import ProblemGraph


def edges_strategy(n):
    pair = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
        lambda t: t[0] != t[1])
    return st.lists(pair, max_size=n * 2, unique_by=lambda t: frozenset(t))


@settings(max_examples=40, deadline=None)
@given(edges_strategy(8))
def test_line_executor_valid_for_any_problem_graph(edges):
    coupling = line(8)
    mapping = Mapping.trivial(8)
    circuit, _ = compile_with_pattern(coupling, get_pattern(coupling),
                                      edges, mapping)
    validate_compiled(circuit, coupling.edges, mapping, edges)


@settings(max_examples=30, deadline=None)
@given(edges_strategy(9))
def test_grid_executor_valid_for_any_problem_graph(edges):
    coupling = grid(3, 3)
    mapping = Mapping.trivial(9)
    circuit, _ = compile_with_pattern(coupling, get_pattern(coupling),
                                      edges, mapping)
    validate_compiled(circuit, coupling.edges, mapping, edges)


@settings(max_examples=25, deadline=None)
@given(edges_strategy(8), st.permutations(list(range(8))))
def test_line_executor_valid_for_any_initial_mapping(edges, perm):
    coupling = line(8)
    mapping = Mapping(perm, 8)
    circuit, _ = compile_with_pattern(coupling, get_pattern(coupling),
                                      edges, mapping)
    validate_compiled(circuit, coupling.edges, mapping, edges)


@settings(max_examples=25, deadline=None)
@given(edges_strategy(10))
def test_hybrid_compiler_valid_for_any_problem_graph(edges):
    from repro.compiler import compile_qaoa

    coupling = line(10)
    problem = ProblemGraph(10, edges)
    result = compile_qaoa(coupling, problem, method="hybrid")
    result.validate(coupling, problem)


@settings(max_examples=25, deadline=None)
@given(edges_strategy(8))
def test_depth_never_exceeds_rigid_pattern_bound(edges):
    """Executor depth for a sub-clique never exceeds the clique schedule."""
    from repro.problems import clique

    coupling = line(8)
    mapping = Mapping.trivial(8)
    pattern = get_pattern(coupling)
    sub, _ = compile_with_pattern(coupling, pattern, edges, mapping)
    full, _ = compile_with_pattern(coupling, pattern, clique(8).edges,
                                   mapping)
    assert sub.depth() <= full.depth()
