"""Tests for the 2xUnit grid bipartite pattern (Fig 8/9)."""

import pytest

from repro.ata.base import GATE
from repro.ata.bipartite_pattern import BipartitePattern


def simulate(pattern):
    """Returns (met cross pairs, final row contents, n cycles)."""
    occupant = {}
    for i, q in enumerate(pattern.row_a):
        occupant[q] = ("a", i)
    for i, q in enumerate(pattern.row_b):
        occupant[q] = ("b", i)
    met = []
    n_cycles = 0
    for cycle in pattern.cycles():
        n_cycles += 1
        swaps = []
        for action, u, v in cycle:
            if action == GATE:
                met.append(frozenset((occupant[u], occupant[v])))
            else:
                swaps.append((u, v))
        for u, v in swaps:
            occupant[u], occupant[v] = occupant[v], occupant[u]
    final_a = [occupant[q] for q in pattern.row_a]
    final_b = [occupant[q] for q in pattern.row_b]
    return met, final_a, final_b, n_cycles


@pytest.mark.parametrize("n", range(1, 13))
def test_bipartite_all_to_all_exactly_once(n):
    pattern = BipartitePattern(list(range(n)), list(range(n, 2 * n)))
    met, _, _, n_cycles = simulate(pattern)
    expected = {frozenset((("a", i), ("b", j)))
                for i in range(n) for j in range(n)}
    assert set(met) == expected
    # "each node on the top row [is] neighbor to each node in the bottom row
    # once and only once" (Section 3.1).
    assert len(met) == len(expected)
    assert n_cycles == 2 * n


@pytest.mark.parametrize("n", range(2, 10))
def test_occupants_never_leave_their_row(n):
    pattern = BipartitePattern(list(range(n)), list(range(n, 2 * n)))
    _, final_a, final_b, _ = simulate(pattern)
    assert all(tag == "a" for tag, _ in final_a)
    assert all(tag == "b" for tag, _ in final_b)


@pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
def test_rows_end_reversed(n):
    pattern = BipartitePattern(list(range(n)), list(range(n, 2 * n)))
    _, final_a, final_b, _ = simulate(pattern)
    assert final_a == [("a", i) for i in range(n - 1, -1, -1)]
    assert final_b == [("b", i) for i in range(n - 1, -1, -1)]


def test_cycles_are_disjoint():
    pattern = BipartitePattern([0, 1, 2, 3], [4, 5, 6, 7])
    for cycle in pattern.cycles():
        qubits = [q for _, u, v in cycle for q in (u, v)]
        assert len(qubits) == len(set(qubits))


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        BipartitePattern([0, 1], [2])


def test_shared_qubits_rejected():
    with pytest.raises(ValueError):
        BipartitePattern([0, 1], [1, 2])


def test_region():
    pattern = BipartitePattern([0, 1], [5, 6])
    assert pattern.region == frozenset({0, 1, 5, 6})
