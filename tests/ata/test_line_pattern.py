"""Tests for the 1xUnit line pattern (Fig 6/7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ata.base import GATE, SWAP
from repro.ata.line_pattern import LinePattern


def simulate(pattern):
    """Track occupants and gate meetings over the full schedule.

    Returns (met_pairs, final_occupants, n_cycles).
    """
    path = pattern.path
    occupant = {q: i for i, q in enumerate(path)}  # physical -> element
    met = set()
    n_cycles = 0
    for cycle in pattern.cycles():
        n_cycles += 1
        swaps = []
        for action, u, v in cycle:
            if action == GATE:
                met.add(frozenset((occupant[u], occupant[v])))
            else:
                swaps.append((u, v))
        for u, v in swaps:
            occupant[u], occupant[v] = occupant[v], occupant[u]
    final = [occupant[q] for q in path]
    return met, final, n_cycles


def all_pairs(m):
    return {frozenset((i, j)) for i in range(m) for j in range(i + 1, m)}


class TestCoverage:
    @pytest.mark.parametrize("m", range(2, 21))
    def test_all_pairs_meet(self, m):
        met, _, _ = simulate(LinePattern(list(range(m))))
        assert met == all_pairs(m)

    @pytest.mark.parametrize("m", range(2, 21))
    def test_linear_depth(self, m):
        _, _, n_cycles = simulate(LinePattern(list(range(m))))
        assert n_cycles <= 2 * m + 2

    def test_nontrivial_physical_labels(self):
        # Pattern must work on arbitrary path node ids, not just 0..m-1.
        path = [10, 3, 7, 42]
        met, _, _ = simulate(LinePattern(path))
        assert met == all_pairs(4)


class TestReversal:
    @pytest.mark.parametrize("m", [2, 4, 6, 8, 10, 12])
    def test_even_length_reverses(self, m):
        pattern = LinePattern(list(range(m)))
        assert pattern.reverses
        _, final, _ = simulate(pattern)
        assert final == list(range(m - 1, -1, -1))

    @pytest.mark.parametrize("m", [3, 5, 7])
    def test_odd_length_flagged_non_reversing(self, m):
        assert not LinePattern(list(range(m))).reverses


class TestStructure:
    def test_layers_alternate_gate_swap(self):
        pattern = LinePattern(list(range(6)))
        for index, cycle in enumerate(pattern.cycles()):
            kinds = {action for action, _, _ in cycle}
            expected = {GATE} if index % 2 == 0 else {SWAP}
            assert kinds <= expected

    def test_layers_are_disjoint(self):
        for cycle in LinePattern(list(range(9))).cycles():
            qubits = [q for _, u, v in cycle for q in (u, v)]
            assert len(qubits) == len(set(qubits))

    def test_trivial_line(self):
        assert list(LinePattern([5]).cycles()) == []

    def test_duplicate_path_rejected(self):
        with pytest.raises(ValueError):
            LinePattern([0, 1, 0])

    def test_region(self):
        assert LinePattern([4, 2, 9]).region == frozenset({4, 2, 9})


class TestRestrict:
    def test_restrict_to_segment(self):
        pattern = LinePattern(list(range(10)))
        sub = pattern.restrict([3, 6, 4])
        assert sub.path == [3, 4, 5, 6]

    def test_restricted_coverage(self):
        sub = LinePattern(list(range(10))).restrict([2, 5])
        met, _, _ = simulate(sub)
        assert met == all_pairs(4)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 24))
def test_gate_opportunity_count_property(m):
    """Every adjacent pair of positions appears in some gate cycle."""
    pattern = LinePattern(list(range(m)))
    met, _, _ = simulate(pattern)
    assert len(met) == m * (m - 1) // 2
