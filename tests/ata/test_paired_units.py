"""Detailed tests for the Sycamore / hexagon unit-transposition patterns."""

import pytest

from repro.arch import hexagon, sycamore
from repro.ata import HexagonPattern, SycamorePattern, get_pattern
from repro.ata.base import GATE
from repro.ir.mapping import Mapping
from repro.ata.executor import execute_pattern
from repro.ir.validate import validate_compiled
from repro.problems import clique


def pattern_actions_use_valid_couplings(pattern, coupling):
    for cycle in pattern.cycles():
        for _, u, v in cycle:
            assert coupling.has_edge(u, v), (u, v)


class TestSycamorePattern:
    def test_all_actions_on_couplings(self):
        coupling = sycamore(4, 5)
        pattern_actions_use_valid_couplings(get_pattern(coupling), coupling)

    def test_pair_paths_alternate_units(self):
        coupling = sycamore(4, 4)
        pattern = SycamorePattern.for_architecture(coupling)
        for r in range(3):
            path = pattern._pair_path(r)
            rows = [q // 4 for q in path]
            assert set(rows) == {r, r + 1}
            assert rows[0] != rows[1]  # strictly alternating chain
            assert len(path) == 8

    def test_requires_two_rows(self):
        with pytest.raises(ValueError):
            SycamorePattern(4, (2, 2), (0, 3))

    def test_restricted_region_clique(self):
        coupling = sycamore(5, 5)
        pattern = get_pattern(coupling)
        qubits = [6, 7, 11, 12]  # rows 1-2, cols 1-2
        sub = pattern.restrict(qubits)
        mapping = Mapping(qubits, 25)
        problem = clique(4)
        circuit, _, residual = execute_pattern(sub, mapping, problem.edges,
                                               n_physical=25)
        assert not residual
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)
        touched = {q for op in circuit for q in op.qubits}
        assert touched <= sub.region


class TestHexagonPattern:
    def test_all_actions_on_couplings(self):
        coupling = hexagon(6, 5)
        pattern_actions_use_valid_couplings(get_pattern(coupling), coupling)

    def test_pair_path_crossing_link_exists(self):
        coupling = hexagon(4, 4)
        pattern = HexagonPattern.for_architecture(coupling)
        for c in range(3):
            path = pattern._pair_path(c)
            assert len(path) == 8
            for a, b in zip(path, path[1:]):
                assert coupling.has_edge(a, b), (c, a, b)

    def test_odd_row_range_rejected_for_multi_column(self):
        with pytest.raises(ValueError):
            HexagonPattern(6, (0, 2), (0, 2))  # 3-row range, 3 columns

    def test_single_column_is_a_line(self):
        coupling = hexagon(6, 1)
        pattern = get_pattern(coupling)
        cycles = list(pattern.cycles())
        assert cycles  # behaves as the 1xUnit line solution
        gates = [a for cyc in cycles for a in cyc if a[0] == GATE]
        assert gates

    def test_restricted_region_clique(self):
        coupling = hexagon(6, 4)
        pattern = get_pattern(coupling)
        qubits = [0, 1, 6, 7]  # cols 0-1, rows 0-1
        sub = pattern.restrict(qubits)
        mapping = Mapping(qubits, coupling.n_qubits)
        problem = clique(4)
        circuit, _, residual = execute_pattern(
            sub, mapping, problem.edges, n_physical=coupling.n_qubits)
        assert not residual
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)


class TestHeavyHexPatternDetails:
    def test_actions_on_couplings(self):
        from repro.arch import heavyhex
        coupling = heavyhex(3, 6)
        pattern_actions_use_valid_couplings(get_pattern(coupling), coupling)

    def test_exchange_layer_disjoint(self):
        from repro.arch import heavyhex
        from repro.ata import HeavyHexPattern
        coupling = heavyhex(4, 10)
        pattern = HeavyHexPattern.for_architecture(coupling)
        exchange = pattern._exchange()
        qubits = [q for _, u, v in exchange for q in (u, v)]
        assert len(qubits) == len(set(qubits))
