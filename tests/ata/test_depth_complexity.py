"""Numerical checks of the claimed cycle complexities per pattern family.

These pin down the *constants*, not just linearity: a regression that
doubles a schedule's length would pass a loose O(n) test but fail these.
"""

import pytest

from repro.arch import cube, grid, heavyhex, hexagon, line, sycamore
from repro.ata import get_pattern, pattern_length
from repro.ata.grid_pattern import GridCliquePattern, OptimizedGridPattern


class TestScheduleLengths:
    @pytest.mark.parametrize("m", [4, 8, 16, 24])
    def test_line_is_two_n(self, m):
        assert pattern_length(get_pattern(line(m))) == 2 * m

    @pytest.mark.parametrize("shape", [(4, 4), (6, 6), (4, 8)])
    def test_merged_grid_is_one_point_five_n(self, shape):
        rows, cols = shape
        expected = -(-rows // 2) * (3 * cols + 2) - 2
        assert pattern_length(
            OptimizedGridPattern(grid(*shape).metadata["units"])) == expected

    @pytest.mark.parametrize("shape", [(4, 4), (6, 6)])
    def test_unmerged_grid_is_about_two_n(self, shape):
        rows, cols = shape
        n = rows * cols
        length = pattern_length(
            GridCliquePattern(grid(*shape).metadata["units"]))
        assert 2 * n - 5 <= length <= 2 * n + 2 * cols + rows + 5

    @pytest.mark.parametrize("shape", [(4, 4), (5, 5)])
    def test_sycamore_is_about_four_n(self, shape):
        n = shape[0] * shape[1]
        length = pattern_length(get_pattern(sycamore(*shape)))
        assert length <= 4 * n + 4 * shape[1] + 8

    @pytest.mark.parametrize("shape", [(4, 4), (6, 4)])
    def test_hexagon_is_about_four_n(self, shape):
        n = shape[0] * shape[1]
        length = pattern_length(get_pattern(hexagon(*shape)))
        assert length <= 4 * n + 4 * shape[0] + 8

    def test_cube_is_about_four_n(self):
        coupling = cube(3, 3, 3)
        length = pattern_length(get_pattern(coupling))
        assert length <= 4 * 27 + 40

    @pytest.mark.parametrize("rows", [2, 3, 4])
    def test_heavyhex_is_about_four_path_lengths(self, rows):
        coupling = heavyhex(rows, 6)
        path_len = len(coupling.metadata["path"])
        length = pattern_length(get_pattern(coupling))
        # Two line passes (2 * 2p) plus interleave and exchange cycles.
        assert length <= 6 * path_len + 10


class TestMergedGridBeatsFamilies:
    """The ordering merged < snake < unmerged must hold across shapes."""

    @pytest.mark.parametrize("shape", [(4, 4), (4, 6), (6, 6), (8, 8)])
    def test_schedule_length_ordering(self, shape):
        units = grid(*shape).metadata["units"]
        n = shape[0] * shape[1]
        merged = pattern_length(OptimizedGridPattern(units))
        unmerged = pattern_length(GridCliquePattern(units))
        snake = 2 * n  # line pattern over the boustrophedon
        assert merged < snake < unmerged
