"""Tests for the Appendix-A merged grid schedule (~1.5n cycles)."""

import pytest

from repro.arch import grid
from repro.ata import compile_with_pattern, execute_pattern, snake_pattern
from repro.ata.grid_pattern import GridCliquePattern, OptimizedGridPattern
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import clique, random_problem_graph


def compile_clique(coupling, pattern):
    n = coupling.n_qubits
    mapping = Mapping.trivial(n)
    circuit, _ = compile_with_pattern(coupling, pattern, clique(n).edges,
                                      mapping)
    validate_compiled(circuit, coupling.edges, mapping, clique(n).edges)
    return circuit


class TestCoverage:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 3), (3, 3), (3, 4),
                                       (4, 4), (4, 5), (5, 5), (5, 6),
                                       (6, 6)])
    def test_clique_coverage(self, shape):
        coupling = grid(*shape)
        compile_clique(coupling,
                       OptimizedGridPattern(coupling.metadata["units"]))

    def test_single_row(self):
        coupling = grid(1, 6)
        compile_clique(coupling,
                       OptimizedGridPattern(coupling.metadata["units"]))

    def test_single_column(self):
        coupling = grid(6, 1)
        compile_clique(coupling,
                       OptimizedGridPattern(coupling.metadata["units"]))

    def test_arbitrary_initial_mapping(self):
        coupling = grid(3, 4)
        n = coupling.n_qubits
        import random
        perm = list(range(n))
        random.Random(3).shuffle(perm)
        mapping = Mapping(perm, n)
        pattern = OptimizedGridPattern(coupling.metadata["units"])
        circuit, _ = compile_with_pattern(coupling, pattern,
                                          clique(n).edges, mapping)
        validate_compiled(circuit, coupling.edges, mapping, clique(n).edges)


class TestDepthClaims:
    @pytest.mark.parametrize("shape", [(4, 4), (5, 5), (6, 6)])
    def test_beats_snake_on_depth(self, shape):
        """The Appendix-A claim: the merged schedule beats the 2n snake."""
        coupling = grid(*shape)
        optimized = compile_clique(
            coupling, OptimizedGridPattern(coupling.metadata["units"]))
        snake = compile_clique(coupling, snake_pattern(coupling))
        assert optimized.depth() < snake.depth()

    @pytest.mark.parametrize("shape", [(4, 4), (5, 5), (6, 6)])
    def test_beats_unmerged_composition(self, shape):
        coupling = grid(*shape)
        optimized = compile_clique(
            coupling, OptimizedGridPattern(coupling.metadata["units"]))
        unmerged = compile_clique(
            coupling, GridCliquePattern(coupling.metadata["units"]))
        assert optimized.depth() < unmerged.depth()

    def test_close_to_theoretical_bound(self):
        # ceil(R/2) * (3C + 2) - 2 cycles for R x C.
        coupling = grid(6, 6)
        circuit = compile_clique(
            coupling, OptimizedGridPattern(coupling.metadata["units"]))
        assert circuit.depth() <= 3 * (3 * 6 + 2)


class TestSparseExecution:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs_validate(self, seed):
        coupling = grid(4, 4)
        problem = random_problem_graph(16, 0.35, seed=seed)
        mapping = Mapping.trivial(16)
        pattern = OptimizedGridPattern(coupling.metadata["units"])
        circuit, _ = compile_with_pattern(coupling, pattern, problem.edges,
                                          mapping)
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)

    def test_restrict_to_subrectangle(self):
        coupling = grid(5, 5)
        pattern = OptimizedGridPattern(coupling.metadata["units"])
        sub = pattern.restrict([6, 7, 11, 12])
        assert len(sub.region) == 4
        mapping = Mapping([6, 7, 11, 12], 25)
        circuit, _, residual = execute_pattern(sub, mapping,
                                               clique(4).edges,
                                               n_physical=25)
        assert not residual
        validate_compiled(circuit, coupling.edges, mapping, clique(4).edges)
        touched = {q for op in circuit for q in op.qubits}
        assert touched <= sub.region


class TestStructure:
    def test_cycles_are_conflict_free(self):
        coupling = grid(4, 5)
        pattern = OptimizedGridPattern(coupling.metadata["units"])
        for cycle in pattern.cycles():
            qubits = [q for _, u, v in cycle for q in (u, v)]
            assert len(qubits) == len(set(qubits))

    def test_all_actions_on_couplings(self):
        coupling = grid(4, 5)
        pattern = OptimizedGridPattern(coupling.metadata["units"])
        for cycle in pattern.cycles():
            for _, u, v in cycle:
                assert coupling.has_edge(u, v)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OptimizedGridPattern([[0, 1], [2]])
