"""Tests for the 3D lattice generalisation (Fig 13)."""

import pytest

from repro.arch import architecture_for, cube
from repro.ata import compile_with_pattern, get_pattern
from repro.compiler import compile_qaoa
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import clique, random_problem_graph


class TestCubeArchitecture:
    def test_edge_count(self):
        g = cube(2, 2, 2)
        assert g.n_qubits == 8
        assert g.n_edges == 12  # cube edges

    def test_interior_degree_six(self):
        g = cube(3, 3, 3)
        center = 13  # (1,1,1)
        assert g.degree(center) == 6

    def test_planes_metadata(self):
        g = cube(2, 3, 4)
        planes = g.metadata["planes"]
        assert len(planes) == 4
        assert all(len(p) == 6 for p in planes)

    def test_architecture_for(self):
        g = architecture_for("cube", 30)
        assert g.kind == "cube"
        assert g.n_qubits >= 30


class TestCubePattern:
    @pytest.mark.parametrize("dims", [(2, 2, 2), (2, 2, 3), (3, 3, 2),
                                      (3, 3, 3)])
    def test_clique_coverage_linear_depth(self, dims):
        coupling = cube(*dims)
        n = coupling.n_qubits
        mapping = Mapping.trivial(n)
        circuit, _ = compile_with_pattern(
            coupling, get_pattern(coupling), clique(n).edges, mapping)
        validate_compiled(circuit, coupling.edges, mapping, clique(n).edges)
        assert circuit.depth() <= 5 * n + 10

    def test_pair_path_valid_edges(self):
        coupling = cube(3, 3, 3)
        pattern = get_pattern(coupling)
        for z in range(2):
            path = pattern._pair_path(z)
            assert len(path) == 18
            for a, b in zip(path, path[1:]):
                assert coupling.has_edge(a, b), (a, b)

    def test_single_plane_cube(self):
        coupling = cube(3, 3, 1)
        n = coupling.n_qubits
        mapping = Mapping.trivial(n)
        circuit, _ = compile_with_pattern(
            coupling, get_pattern(coupling), clique(n).edges, mapping)
        validate_compiled(circuit, coupling.edges, mapping, clique(n).edges)

    def test_hybrid_compiler_on_cube(self):
        coupling = cube(3, 3, 3)
        problem = random_problem_graph(20, 0.3, seed=6)
        result = compile_qaoa(coupling, problem, method="hybrid")
        result.validate(coupling, problem)
