"""Fine-grained semantics of the pattern executor."""


from repro.ata import LinePattern, execute_pattern
from repro.ata.base import GATE, SWAP, AtaPattern
from repro.ir.gates import CPHASE
from repro.ir.mapping import Mapping


class ScriptedPattern(AtaPattern):
    """A hand-written cycle list, for poking at executor edge cases."""

    def __init__(self, script, region):
        self._script = script
        self._region = frozenset(region)

    def cycles(self):
        return iter(self._script)

    @property
    def region(self):
        return self._region


class TestGateSkipping:
    def test_unneeded_gate_opportunity_ignored(self):
        pattern = ScriptedPattern([[(GATE, 0, 1)], [(GATE, 1, 2)]],
                                  region=[0, 1, 2])
        circuit, _, residual = execute_pattern(
            pattern, Mapping.trivial(3), [(1, 2)])
        assert not residual
        assert circuit.cphase_count == 1
        assert circuit.depth() == 1  # unused opportunity costs no cycle

    def test_conflicting_gate_opportunities_take_first_needed(self):
        # Both (0,1) and (1,2) needed; one cycle offers both (share qubit 1).
        pattern = ScriptedPattern(
            [[(GATE, 0, 1), (GATE, 1, 2)], [(GATE, 1, 2)]],
            region=[0, 1, 2])
        circuit, _, residual = execute_pattern(
            pattern, Mapping.trivial(3), [(0, 1), (1, 2)])
        assert not residual
        assert circuit.cphase_count == 2

    def test_repeat_opportunity_not_reexecuted(self):
        pattern = ScriptedPattern([[(GATE, 0, 1)], [(GATE, 0, 1)]],
                                  region=[0, 1])
        circuit, _, _ = execute_pattern(
            pattern, Mapping.trivial(2), [(0, 1)])
        assert circuit.cphase_count == 1


class TestSwapElision:
    def test_swap_between_finished_qubits_elided(self):
        # One needed edge (0,1) executed in cycle 0; the later swap moves
        # two finished occupants and must be skipped.
        pattern = ScriptedPattern(
            [[(GATE, 0, 1)], [(GATE, 2, 3)], [(SWAP, 0, 1)]],
            region=[0, 1, 2, 3])
        circuit, mapping, residual = execute_pattern(
            pattern, Mapping.trivial(4), [(0, 1), (2, 3)])
        assert not residual
        assert circuit.swap_count == 0
        assert mapping == Mapping.trivial(4)

    def test_swap_with_active_occupant_kept(self):
        pattern = ScriptedPattern(
            [[(SWAP, 1, 2)], [(GATE, 0, 1)]], region=[0, 1, 2])
        circuit, _, residual = execute_pattern(
            pattern, Mapping.trivial(3), [(0, 2)])
        assert not residual
        assert circuit.swap_count == 1

    def test_spare_qubit_swap_with_active_partner(self):
        # Logical 0 at position 0 must reach logical 1 at position 2; the
        # spare at position 1 participates in routing.
        pattern = ScriptedPattern(
            [[(SWAP, 1, 2)], [(GATE, 0, 1)]], region=[0, 1, 2])
        mapping = Mapping([0, 2], 3)
        circuit, _, residual = execute_pattern(pattern, mapping, [(0, 1)])
        assert not residual
        assert circuit.cphase_count == 1


class TestGamma:
    def test_gamma_on_all_gates(self):
        circuit, _, _ = execute_pattern(
            LinePattern([0, 1, 2]), Mapping.trivial(3),
            [(0, 1), (1, 2), (0, 2)], gamma=1.25)
        for op in circuit:
            if op.kind == CPHASE:
                assert op.param == 1.25
