"""Tests for the pattern executor (sparse skipping, early stop, residuals)."""

import pytest

from repro.arch import grid, heavyhex, line
from repro.ata import (compile_with_pattern, execute_pattern, get_pattern,
                       greedy_completion)
from repro.ir.circuit import Circuit
from repro.ir.gates import CPHASE, SWAP
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import clique, random_problem_graph


class TestSparseSkipping:
    def test_only_needed_gates_emitted(self):
        coupling = line(6)
        edges = [(0, 1), (3, 5)]
        circuit, _, residual = execute_pattern(
            get_pattern(coupling), Mapping.trivial(6), edges)
        assert not residual
        assert circuit.cphase_count == 2
        validate_compiled(circuit, coupling.edges, Mapping.trivial(6), edges)

    def test_early_stop_trims_depth(self):
        coupling = line(10)
        sparse, _, _ = execute_pattern(
            get_pattern(coupling), Mapping.trivial(10), [(0, 1)])
        dense, _, _ = execute_pattern(
            get_pattern(coupling), Mapping.trivial(10), clique(10).edges)
        assert sparse.depth() == 1
        assert sparse.depth() < dense.depth()

    def test_empty_edge_set(self):
        circuit, mapping, residual = execute_pattern(
            get_pattern(line(4)), Mapping.trivial(4), [])
        assert len(circuit) == 0
        assert not residual
        assert mapping == Mapping.trivial(4)

    def test_gamma_propagates(self):
        circuit, _, _ = execute_pattern(
            get_pattern(line(3)), Mapping.trivial(3), [(0, 2)], gamma=0.7)
        gates = [op for op in circuit if op.kind == CPHASE]
        assert all(op.param == 0.7 for op in gates)

    def test_appends_to_existing_circuit(self):
        prefix = Circuit(4)
        prefix.append_count = len(prefix)
        circuit, _, _ = execute_pattern(
            get_pattern(line(4)), Mapping.trivial(4), [(0, 1)],
            circuit=prefix)
        assert circuit is prefix


class TestArbitraryInitialMapping:
    @pytest.mark.parametrize("perm", [[2, 0, 3, 1], [3, 2, 1, 0]])
    def test_any_placement_works(self, perm):
        coupling = line(4)
        mapping = Mapping(perm, 4)
        problem = clique(4)
        circuit, _ = compile_with_pattern(
            coupling, get_pattern(coupling), problem.edges, mapping)
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)

    def test_spare_physical_qubits(self):
        coupling = grid(3, 3)
        mapping = Mapping([0, 1, 2, 3, 4], 9)  # 5 logical on 9 physical
        problem = random_problem_graph(5, 0.6, seed=2)
        circuit, _ = compile_with_pattern(
            coupling, get_pattern(coupling), problem.edges, mapping)
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)


class TestGreedyCompletion:
    def test_completes_residual_pairs(self):
        coupling = line(5)
        circuit = Circuit(5)
        mapping = Mapping.trivial(5)
        residual = {(0, 4), (1, 3)}
        greedy_completion(coupling, circuit, mapping, residual)
        assert not residual
        validate_compiled(circuit, coupling.edges, Mapping.trivial(5),
                          [(0, 4), (1, 3)])

    def test_adjacent_pair_costs_no_swaps(self):
        coupling = line(3)
        circuit = Circuit(3)
        mapping = Mapping.trivial(3)
        greedy_completion(coupling, circuit, mapping, {(0, 1)})
        assert circuit.swap_count == 0
        assert circuit.cphase_count == 1

    def test_residual_pairs_sharing_a_qubit(self):
        # Routing (0, 2) moves qubit 2's occupant; (2, 4) must then be
        # routed from the *mutated* mapping, not the initial one.
        coupling = line(5)
        circuit = Circuit(5)
        mapping = Mapping.trivial(5)
        residual = {(0, 2), (2, 4)}
        greedy_completion(coupling, circuit, mapping, residual)
        assert not residual
        assert circuit.cphase_count == 2
        validate_compiled(circuit, coupling.edges, Mapping.trivial(5),
                          [(0, 2), (2, 4)])

    def test_mixed_adjacent_and_distant_pairs(self):
        coupling = line(5)
        circuit = Circuit(5)
        mapping = Mapping.trivial(5)
        residual = {(0, 1), (1, 4)}
        greedy_completion(coupling, circuit, mapping, residual)
        assert not residual
        validate_compiled(circuit, coupling.edges, Mapping.trivial(5),
                          [(0, 1), (1, 4)])

    def test_residual_set_is_cleared(self):
        coupling = grid(3, 3)
        residual = {(0, 8), (2, 6)}
        greedy_completion(coupling, Circuit(9), Mapping.trivial(9), residual)
        assert residual == set()

    def test_mapping_mutated_consistently_with_emitted_swaps(self):
        # The in-place mapping must equal the initial mapping pushed
        # through every SWAP the completion emitted.
        coupling = grid(3, 3)
        circuit = Circuit(9)
        mapping = Mapping.trivial(9)
        greedy_completion(coupling, circuit, mapping, {(0, 8), (1, 5)})
        replayed = Mapping.trivial(9)
        for op in circuit:
            if op.kind == SWAP:
                replayed.swap_physical(*op.qubits)
        assert replayed == mapping


class TestSparseRandomGraphs:
    @pytest.mark.parametrize("kind_factory", [
        lambda: line(16), lambda: grid(4, 4), lambda: heavyhex(2, 6)])
    def test_random_sparse_validates(self, kind_factory):
        coupling = kind_factory()
        n_logical = min(coupling.n_qubits, 14)
        problem = random_problem_graph(n_logical, 0.3, seed=5)
        mapping = Mapping.trivial(n_logical, coupling.n_qubits)
        circuit, _ = compile_with_pattern(
            coupling, get_pattern(coupling), problem.edges, mapping)
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)


class TestRestriction:
    def test_grid_restrict_covers_subclique(self):
        coupling = grid(5, 5)
        pattern = get_pattern(coupling)
        qubits = [6, 7, 11, 12]  # a 2x2 block
        sub = pattern.restrict(qubits)
        assert sub.region >= set(qubits)
        assert len(sub.region) == 4

    def test_grid_restricted_execution(self):
        coupling = grid(5, 5)
        # Logical qubits placed inside rows 1-2, cols 1-2.
        mapping = Mapping([6, 7, 11, 12], 25)
        problem = clique(4)
        sub = get_pattern(coupling).restrict([6, 7, 11, 12])
        circuit, _, residual = execute_pattern(
            sub, mapping, problem.edges, n_physical=25)
        assert not residual
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)
        # Restricted pattern never touches qubits outside its region.
        touched = {q for op in circuit for q in op.qubits}
        assert touched <= sub.region

    def test_sycamore_restrict_widens_single_row(self):
        from repro.arch import sycamore
        pattern = get_pattern(sycamore(4, 4))
        sub = pattern.restrict([0, 2])  # both on row 0
        assert sub.row_range in [(0, 1)]

    def test_hexagon_restrict_even_rows(self):
        from repro.arch import hexagon
        pattern = get_pattern(hexagon(6, 4))
        sub = pattern.restrict([0, 7])  # col 0 rows 0..1? -> even range
        span = sub.row_range[1] - sub.row_range[0] + 1
        assert span % 2 == 0

    def test_heavyhex_restrict_on_path_only(self):
        coupling = heavyhex(3, 6)
        pattern = get_pattern(coupling)
        path = coupling.metadata["path"]
        sub = pattern.restrict([path[2], path[5]])
        assert len(sub.path) == 4
        assert not sub.off_path

    def test_heavyhex_restrict_with_off_path_keeps_full(self):
        coupling = heavyhex(3, 6)
        pattern = get_pattern(coupling)
        off = next(iter(coupling.metadata["off_path"]))
        sub = pattern.restrict([off, coupling.metadata["path"][0]])
        assert sub.region == pattern.region
