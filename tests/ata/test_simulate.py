"""Simulated candidate metrics must equal the materialised circuit's.

The lazy-candidate path scores prefix+suffix candidates with the
streaming trackers in ``repro.ata.simulate``; selection only works if
those numbers are *identical* (not approximately equal — esp feeds a
float comparison) to what ``make_candidate`` measures on the real
circuit built by ``ata_suffix``.  These tests sweep line / grid /
heavy-hex devices, with and without a noise model, from both fresh
mappings and greedy-prefix snapshots.
"""

import pytest

from repro.arch import grid, heavyhex_for, line
from repro.arch.noise import NoiseModel
from repro.ata.registry import get_pattern
from repro.ata.simulate import (ExactTracker, FastTracker,
                                candidate_metrics, make_tracker)
from repro.compiler.greedy import greedy_compile
from repro.compiler.prediction import ata_suffix
from repro.ir.circuit import Circuit
from repro.ir.mapping import Mapping
from repro.problems import regular_problem_graph


def reference_metrics(circuit, noise):
    return (circuit.depth(), circuit.cx_count(unify=True),
            noise.esp(circuit) if noise is not None else None)


DEVICES = [
    pytest.param(lambda: line(12), 12, id="line12"),
    pytest.param(lambda: grid(4, 5), 20, id="grid4x5"),
    pytest.param(lambda: heavyhex_for(20), 18, id="heavyhex"),
]


@pytest.mark.parametrize("make_coupling, n_logical", DEVICES)
@pytest.mark.parametrize("with_noise", [False, True], ids=["ideal", "noisy"])
def test_pure_suffix_metrics_match(make_coupling, n_logical, with_noise):
    coupling = make_coupling()
    n_logical = min(n_logical, coupling.n_qubits)
    problem = regular_problem_graph(n_logical, 3, seed=5)
    mapping = Mapping.trivial(n_logical, coupling.n_qubits)
    noise = NoiseModel(coupling, seed=3) if with_noise else None
    pattern = get_pattern(coupling)

    circuit, _ = ata_suffix(coupling, pattern, mapping, problem.edges,
                            gamma=0.7)
    assert candidate_metrics(coupling, pattern, mapping, problem.edges,
                             noise=noise) == reference_metrics(circuit,
                                                               noise)


@pytest.mark.parametrize("make_coupling, n_logical", DEVICES)
@pytest.mark.parametrize("with_noise", [False, True], ids=["ideal", "noisy"])
def test_prefix_fork_metrics_match(make_coupling, n_logical, with_noise):
    """Greedy prefix + ATA suffix at every snapshot, via tracker forking."""
    coupling = make_coupling()
    n_logical = min(n_logical, coupling.n_qubits)
    problem = regular_problem_graph(n_logical, 3, seed=9)
    mapping = Mapping.trivial(n_logical, coupling.n_qubits)
    noise = NoiseModel(coupling, seed=3) if with_noise else None
    pattern = get_pattern(coupling)

    trace = greedy_compile(coupling, problem, mapping, noise=noise,
                           gamma=0.4, max_cycles=6)
    tracker = make_tracker(coupling.n_qubits, noise)
    fed = 0
    checked = 0
    for snapshot in trace.snapshots:
        if not snapshot.remaining or snapshot.op_count == 0:
            continue
        while fed < snapshot.op_count:
            tracker.feed_op(trace.circuit.ops[fed])
            fed += 1
        fork = tracker.copy()
        simulated = candidate_metrics(
            coupling, pattern, snapshot.mapping, snapshot.remaining,
            noise=noise, prefix_tracker=fork)
        prefix = Circuit(coupling.n_qubits,
                         list(trace.circuit.ops[:snapshot.op_count]))
        circuit, _ = ata_suffix(coupling, pattern, snapshot.mapping,
                                snapshot.remaining, gamma=0.4,
                                circuit=prefix)
        assert simulated == reference_metrics(circuit, noise)
        checked += 1
    assert checked > 0


def test_tracker_choice_by_noise():
    coupling = line(6)
    assert isinstance(make_tracker(6, None), FastTracker)
    assert isinstance(make_tracker(6, NoiseModel(coupling)), ExactTracker)


def test_trackers_agree_on_shared_metrics():
    """FastTracker and ExactTracker see the same depth and CX count."""
    coupling = grid(3, 4)
    problem = regular_problem_graph(12, 3, seed=2)
    mapping = Mapping.trivial(12, coupling.n_qubits)
    pattern = get_pattern(coupling)
    fast = candidate_metrics(coupling, pattern, mapping, problem.edges)
    exact = candidate_metrics(coupling, pattern, mapping, problem.edges,
                              prefix_tracker=ExactTracker(
                                  coupling.n_qubits))
    assert fast[:2] == exact[:2]


def test_compiled_plan_matches_generated_cycles():
    """The distinct-cycle replay must equal the generator walk exactly —
    same cycles, same intra-cycle action order."""
    from repro.ata.grid_pattern import OptimizedGridPattern
    from repro.ata.heavyhex_pattern import HeavyHexPattern
    from repro.ata.line_pattern import LinePattern

    patterns = [
        LinePattern(list(range(2))),
        LinePattern(list(range(7))),
        LinePattern(list(range(10))),
        OptimizedGridPattern([[0, 1, 2]]),
        OptimizedGridPattern([[0], [1], [2]]),
        OptimizedGridPattern([[0, 1], [2, 3], [4, 5]]),
        OptimizedGridPattern([[0, 1, 2, 3], [4, 5, 6, 7],
                              [8, 9, 10, 11], [12, 13, 14, 15]]),
        OptimizedGridPattern([[c + 5 * r for c in range(5)]
                              for r in range(4)]),
        HeavyHexPattern(list(range(9)), {}),
        HeavyHexPattern([0, 1, 2, 3, 4], {5: [1, 3], 6: [0, 4]}),
    ]
    for pattern in patterns:
        distinct, schedule = pattern._compiled_plan()
        replayed = [distinct[i] for i in schedule]
        generated = [list(cycle) for cycle in pattern.cycles()]
        assert replayed == generated, repr(pattern)


def test_fork_does_not_disturb_parent():
    """Forked suffix simulation must leave the prefix tracker reusable."""
    coupling = line(8)
    problem = regular_problem_graph(8, 3, seed=4)
    mapping = Mapping.trivial(8, coupling.n_qubits)
    pattern = get_pattern(coupling)
    parent = make_tracker(coupling.n_qubits, None)
    first = candidate_metrics(coupling, pattern, mapping, problem.edges,
                              prefix_tracker=parent.copy())
    second = candidate_metrics(coupling, pattern, mapping, problem.edges,
                               prefix_tracker=parent.copy())
    assert first == second
