"""End-to-end clique coverage for every architecture's ATA pattern.

These are the paper's headline structural claims: a clique problem graph
compiles in linear depth on each regular architecture, verified gate by
gate through the semantic validator.
"""

import pytest

from repro.arch import grid, heavyhex, hexagon, line, mumbai, sycamore
from repro.ata import compile_with_pattern, get_pattern
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import clique


def compile_clique(coupling):
    n = coupling.n_qubits
    problem = clique(n)
    mapping = Mapping.trivial(n, coupling.n_qubits)
    pattern = get_pattern(coupling)
    circuit, _ = compile_with_pattern(coupling, pattern, problem.edges,
                                      mapping)
    report = validate_compiled(circuit, coupling.edges, mapping,
                               problem.edges)
    assert report.n_edges == problem.n_edges
    return circuit


class TestLineClique:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 12])
    def test_coverage_and_linear_depth(self, n):
        circuit = compile_clique(line(n))
        assert circuit.depth() <= 2 * n + 2


class TestGridClique:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 3), (3, 3), (3, 4),
                                       (4, 4), (4, 5), (5, 5)])
    def test_coverage(self, shape):
        circuit = compile_clique(grid(*shape))
        n = shape[0] * shape[1]
        # Section 3.1 / Appendix A: linear depth; our unmerged composition
        # is ~2n + O(sqrt(n)).
        assert circuit.depth() <= 3 * n + 10

    def test_single_row_grid(self):
        compile_clique(grid(1, 6))

    def test_single_column_grid(self):
        compile_clique(grid(6, 1))


class TestSycamoreClique:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 4), (3, 3), (4, 4),
                                       (4, 5), (5, 5)])
    def test_coverage(self, shape):
        circuit = compile_clique(sycamore(*shape))
        n = shape[0] * shape[1]
        assert circuit.depth() <= 5 * n + 10


class TestHexagonClique:
    @pytest.mark.parametrize("shape", [(2, 2), (4, 3), (4, 4), (6, 4)])
    def test_coverage(self, shape):
        circuit = compile_clique(hexagon(*shape))
        n = shape[0] * shape[1]
        assert circuit.depth() <= 5 * n + 10

    def test_single_column(self):
        compile_clique(hexagon(6, 1))


class TestHeavyHexClique:
    @pytest.mark.parametrize("rows", [1, 2, 3, 4])
    def test_coverage(self, rows):
        coupling = heavyhex(rows, 6)
        circuit = compile_clique(coupling)
        # Appendix C: O(n) with a constant for the two passes.
        assert circuit.depth() <= 6 * coupling.n_qubits + 10

    def test_wider_instance(self):
        compile_clique(heavyhex(3, 10))

    def test_mumbai_device(self):
        compile_clique(mumbai())


class TestDepthScalesLinearly:
    """Depth per qubit must stay bounded as instances grow (the paper's
    worst-case linear-depth guarantee)."""

    def test_grid_depth_ratio_stable(self):
        small = compile_clique(grid(3, 3)).depth() / 9
        large = compile_clique(grid(6, 6)).depth() / 36
        assert large <= small * 1.6 + 1

    def test_heavyhex_depth_ratio_stable(self):
        a = heavyhex(2, 6)
        b = heavyhex(4, 10)
        small = compile_clique(a).depth() / a.n_qubits
        large = compile_clique(b).depth() / b.n_qubits
        assert large <= small * 1.6 + 1
