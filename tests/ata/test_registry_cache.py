"""Tests for the process-local pattern memoization in the ATA registry."""

from repro.arch import grid, heavyhex, line
from repro.ata.registry import (clear_pattern_cache, get_pattern,
                                pattern_cache_info, pattern_cache_key)


class TestPatternCache:
    def test_identical_architectures_share_a_pattern(self):
        clear_pattern_cache()
        first = get_pattern(grid(3, 3))
        second = get_pattern(grid(3, 3))
        assert second is first
        assert pattern_cache_info() == {"hits": 1, "misses": 1, "size": 1}

    def test_uncached_request_builds_fresh(self):
        clear_pattern_cache()
        cached = get_pattern(line(6))
        fresh = get_pattern(line(6), cached=False)
        assert fresh is not cached
        assert pattern_cache_info()["hits"] == 0  # cached=False bypasses

    def test_key_distinguishes_kinds_and_sizes(self):
        keys = {pattern_cache_key(grid(3, 3)),
                pattern_cache_key(grid(3, 4)),
                pattern_cache_key(line(9)),
                pattern_cache_key(heavyhex(2, 6))}
        assert len(keys) == 4

    def test_cached_pattern_schedule_matches_fresh(self):
        clear_pattern_cache()
        coupling = grid(3, 3)
        cached = get_pattern(coupling)
        fresh = get_pattern(coupling, cached=False)
        replayed = [list(c) for c in cached.iter_cycles()]
        generated = [list(c) for c in fresh.cycles()]
        assert replayed == generated
        # Replaying again serves the materialized list.
        assert [list(c) for c in cached.iter_cycles()] == generated

    def test_restricted_patterns_stay_lazy(self):
        clear_pattern_cache()
        pattern = get_pattern(grid(5, 5))
        sub = pattern.restrict([6, 7, 11, 12])
        assert not getattr(sub, "_cache_cycles_on_iter", False)
