"""Unit tests for the deterministic fault-injection harness."""

import json

import pytest

from repro.exceptions import (JobTimeoutError, ResourceExhaustedError,
                              SolverExhaustedError, TransientError)
from repro.resilience import faults
from repro.resilience.faults import (ENV_VAR, FaultPlan, FaultSpec,
                                     active_plan, current_plan, fault_point,
                                     faults_active)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Each test starts with no plan and an empty environment."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestFaultSpec:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="batch.job", action="explode")

    def test_rejects_unknown_error_class(self):
        with pytest.raises(ValueError, match="unknown fault error class"):
            FaultSpec(site="batch.job", error="nope")

    def test_rejects_negative_schedule(self):
        with pytest.raises(ValueError, match="at >= 0"):
            FaultSpec(site="batch.job", at=-1)
        with pytest.raises(ValueError, match="times >= 1"):
            FaultSpec(site="batch.job", times=0)

    def test_fire_raises_the_named_class(self):
        with pytest.raises(ResourceExhaustedError):
            FaultSpec(site="s", error="resource").fire()
        with pytest.raises(SolverExhaustedError):
            FaultSpec(site="s", error="solver_exhausted").fire()
        with pytest.raises(JobTimeoutError):
            FaultSpec(site="s", action="timeout").fire()

    def test_custom_message(self):
        with pytest.raises(TransientError, match="flaky network"):
            FaultSpec(site="s", message="flaky network").fire()


class TestFaultPlan:
    def test_fires_at_the_exact_hit_index(self):
        plan = FaultPlan([FaultSpec(site="s", at=2)])
        with active_plan(plan):
            fault_point("s")
            fault_point("s")
            with pytest.raises(TransientError):
                fault_point("s")
            fault_point("s")  # past the window: inert again
        assert plan.hits == [4]
        assert plan.fired == [1]

    def test_times_widens_the_firing_window(self):
        plan = FaultPlan([FaultSpec(site="s", at=1, times=2)])
        with active_plan(plan):
            fault_point("s")
            with pytest.raises(TransientError):
                fault_point("s")
            with pytest.raises(TransientError):
                fault_point("s")
            fault_point("s")
        assert plan.fired == [2]

    def test_match_filters_on_detail_substring(self):
        plan = FaultPlan([FaultSpec(site="s", match="grid")])
        with active_plan(plan):
            fault_point("s", "line/rand-6/hybrid")  # no match: not a hit
            with pytest.raises(TransientError):
                fault_point("s", "grid/rand-6/hybrid")
        assert plan.hits == [1]

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultSpec(site="a")])
        with active_plan(plan):
            fault_point("b")
            fault_point("b")
            with pytest.raises(TransientError):
                fault_point("a")

    def test_inactive_by_default(self):
        assert not faults_active()
        assert current_plan() is None
        fault_point("s")  # no plan: a no-op

    def test_active_plan_restores_previous_state(self):
        outer = FaultPlan([FaultSpec(site="s", at=99)])
        inner = FaultPlan([])
        with active_plan(outer):
            with active_plan(inner):
                assert current_plan() is inner
            assert current_plan() is outer
        assert current_plan() is None


class TestEnvActivation:
    def test_env_json_round_trip(self):
        plan = FaultPlan([FaultSpec(site="batch.job", action="kill",
                                    at=3, match="poison", exit_code=7)])
        loaded = FaultPlan.from_dict(json.loads(plan.to_env()))
        assert loaded.specs == plan.specs

    def test_env_plan_fires(self, monkeypatch):
        plan = FaultPlan([FaultSpec(site="s")])
        monkeypatch.setenv(ENV_VAR, plan.to_env())
        faults.reset()
        assert faults_active()
        with pytest.raises(TransientError):
            fault_point("s")

    def test_env_file_indirection(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan([FaultSpec(site="s")]).to_env())
        monkeypatch.setenv(ENV_VAR, f"@{path}")
        faults.reset()
        with pytest.raises(TransientError):
            fault_point("s")

    def test_empty_env_means_inactive(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        faults.reset()
        assert not faults_active()

    def test_malformed_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{\"not\": \"a plan\"}")
        faults.reset()
        # The error names the variable so the misconfiguration is
        # obvious, and repeats on every probe (no one-shot swallowing).
        for _ in range(2):
            with pytest.raises(ValueError, match=ENV_VAR):
                fault_point("s")

    def test_bare_list_env_rejected(self, monkeypatch):
        # The env format is the to_env() object, not a bare spec list.
        monkeypatch.setenv(ENV_VAR, '[{"site": "s"}]')
        faults.reset()
        with pytest.raises(ValueError, match="'faults' list"):
            fault_point("s")

    def test_missing_env_file_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, f"@{tmp_path / 'absent.json'}")
        faults.reset()
        with pytest.raises(ValueError, match=ENV_VAR):
            fault_point("s")
