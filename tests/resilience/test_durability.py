"""Durability plumbing: directory fsync and atomic publication.

``fsync`` on a file descriptor makes *contents* durable; the file's
existence lives in the parent directory and needs its own fsync.  These
tests pin the two fixes: the journal fsyncs its parent directory on
creation, and :func:`atomic_write_bytes` publishes all-or-nothing.
"""

import os

import pytest

from repro.batch.jobs import BatchJob
from repro.resilience import journal as journal_mod
from repro.resilience.journal import (BatchJournal, atomic_write_bytes,
                                      fsync_dir)

JOBS = [BatchJob(arch="grid", n_qubits=4, method="greedy")]


class TestFsyncDir:
    def test_fsyncs_a_real_directory(self, tmp_path):
        fsync_dir(tmp_path)  # must not raise

    def test_degrades_to_noop_on_unopenable_path(self, tmp_path):
        fsync_dir(tmp_path / "does-not-exist")  # must not raise


class TestJournalCreationDurability:
    def test_new_journal_fsyncs_parent_dir(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(journal_mod, "fsync_dir",
                            lambda path: synced.append(os.fspath(path)))
        with BatchJournal(tmp_path / "sweep.jsonl", JOBS):
            pass
        assert synced == [os.fspath(tmp_path)]

    def test_existing_journal_skips_the_dir_fsync(self, tmp_path,
                                                  monkeypatch):
        path = tmp_path / "sweep.jsonl"
        with BatchJournal(path, JOBS):
            pass
        synced = []
        monkeypatch.setattr(journal_mod, "fsync_dir",
                            lambda p: synced.append(os.fspath(p)))
        with BatchJournal(path, JOBS):  # truncates, file already present
            pass
        assert synced == []


class TestAtomicWriteBytes:
    def test_round_trip_and_no_temp_leftovers(self, tmp_path):
        target = tmp_path / "entry.json"
        atomic_write_bytes(target, b"first")
        assert target.read_bytes() == b"first"
        atomic_write_bytes(target, b"second")
        assert target.read_bytes() == b"second"
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_failed_replace_cleans_up_and_keeps_old_content(
            self, tmp_path, monkeypatch):
        target = tmp_path / "entry.json"
        atomic_write_bytes(target, b"old")

        def boom(src, dst):
            raise OSError("injected replace failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="injected"):
            atomic_write_bytes(target, b"new")
        monkeypatch.undo()
        assert target.read_bytes() == b"old"
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_publish_hook_runs_in_the_crash_window(self, tmp_path):
        target = tmp_path / "entry.json"
        seen = {}

        def hook():
            # The temp file exists and is complete; the target does not.
            tmp = list(tmp_path.glob("*.tmp.*"))
            seen["tmp_content"] = tmp[0].read_bytes() if tmp else None
            seen["target_exists"] = target.exists()

        atomic_write_bytes(target, b"payload", publish_hook=hook)
        assert seen == {"tmp_content": b"payload", "target_exists": False}
        assert target.read_bytes() == b"payload"

    def test_raising_hook_leaves_orphaned_temp_not_target(self, tmp_path):
        target = tmp_path / "entry.json"

        def hook():
            raise RuntimeError("crash mid-publish")

        with pytest.raises(RuntimeError):
            atomic_write_bytes(target, b"payload", publish_hook=hook)
        assert not target.exists()
        assert len(list(tmp_path.glob("*.tmp.*"))) == 1
