"""Shared helpers for the resilience chaos suite."""

from repro.batch import jobs_for


def small_jobs(n=4, method="greedy", **kwargs):
    """Fast deterministic jobs (tiny line instances, varying seeds)."""
    return jobs_for(["line"], 6, methods=(method,),
                    seeds=tuple(range(n)), **kwargs)


def normalize_report(payload):
    """Project a ``BatchReport.to_json()`` payload onto its deterministic core.

    Wall-clock fields (timings, per-job wall time) and cache deltas vary
    between otherwise-identical runs — cache state depends on what the
    process compiled before — so resume-equality is asserted on
    everything else: job identity and order, ok-ness, compiled metrics,
    error classification, and attempt structure (minus backoff walls).
    """
    return {
        "schema_version": payload["schema_version"],
        "jobs": [
            {
                "name": job["name"],
                "spec": job["spec"],
                "ok": job["ok"],
                "metrics": {k: v for k, v in (job["record"] or {}).items()
                            if k not in ("extra", "wall_time_s")},
                "error": job["error"],
                "error_type": job["error_type"],
                "attempts": [
                    {k: v for k, v in attempt.items() if k != "backoff_s"}
                    for attempt in job["attempts"]
                ],
            }
            for job in payload["jobs"]
        ],
    }
