"""Unit tests for retry policies and the backoff schedule."""

import pytest

from repro._telemetry import clear_events, event_info
from repro.exceptions import (JobTimeoutError, ResourceExhaustedError,
                              TransientError, ValidationError)
from repro.resilience.retry import (NO_RETRY, RetryPolicy, call_with_retry,
                                    execute_with_retry)


class TestClassification:
    def test_transient_subclasses_are_retryable(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientError("x"))

    def test_permanent_errors_are_not(self):
        policy = RetryPolicy()
        assert not policy.is_transient(ValueError("x"))
        assert not policy.is_transient(ValidationError("x"))
        # Budget exhaustion is NOT transient: retrying identical work
        # exhausts the same budget (it degrades instead — see
        # repro.pipeline.solver).
        assert not policy.is_transient(ResourceExhaustedError("x"))

    def test_timeouts_opt_in(self):
        assert not RetryPolicy().is_transient(JobTimeoutError("x"))
        assert RetryPolicy(retry_timeouts=True).is_transient(
            JobTimeoutError("x"))

    def test_retry_on_matches_mro_names(self):
        policy = RetryPolicy(retry_on=("OSError",))
        assert policy.is_transient(ConnectionError("x"))  # OSError subclass
        assert not policy.is_transient(ValueError("x"))

    def test_never_retry_wins_over_everything(self):
        policy = RetryPolicy(never_retry=("TransientError",))
        assert not policy.is_transient(TransientError("x"))
        assert not policy.is_transient(ResourceExhaustedError("x"))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)


class TestBackoffSchedule:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=3.0, jitter=0.0)
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 2.0
        assert policy.delay_s(3) == 3.0  # capped, not 4.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.25)
        first = policy.delay_s(1, key="grid/rand-24/hybrid")
        assert first == policy.delay_s(1, key="grid/rand-24/hybrid")
        assert 0.75 <= first <= 1.25
        # Different keys de-synchronize.
        assert first != policy.delay_s(1, key="another-job")

    def test_policy_is_picklable(self):
        import pickle

        policy = RetryPolicy(retry_on=("OSError",), never_retry=("Boom",))
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestExecuteWithRetry:
    def setup_method(self):
        clear_events()

    def test_recovers_after_transient_failures(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("blip")
            return "done"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.1)
        outcome = execute_with_retry(flaky, policy, key="job-1",
                                     sleep=slept.append)
        assert outcome.ok and outcome.value == "done"
        assert len(outcome.attempts) == 2
        assert all(a["retried"] and a["transient"]
                   for a in outcome.attempts)
        # The recorded schedule is exactly the policy's deterministic one.
        assert slept == [policy.delay_s(1, "job-1"),
                         policy.delay_s(2, "job-1")]
        assert [a["backoff_s"] for a in outcome.attempts] == slept
        events = event_info()
        assert events["resilience.retry.attempts"] == 3
        assert events["resilience.retry.retries"] == 2
        assert events["resilience.retry.recovered"] == 1

    def test_exhausts_the_attempt_budget(self):
        def always_fails():
            raise TransientError("never works")

        outcome = execute_with_retry(
            always_fails, RetryPolicy(max_attempts=3, base_delay_s=0.0),
            sleep=lambda _: None)
        assert not outcome.ok
        assert isinstance(outcome.error, TransientError)
        assert len(outcome.attempts) == 3
        assert outcome.retries == 2
        assert event_info()["resilience.retry.exhausted"] == 1

    def test_permanent_failure_fails_fast(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("wrong spec")

        outcome = execute_with_retry(broken, RetryPolicy(max_attempts=5))
        assert not outcome.ok and len(calls) == 1
        assert outcome.attempts[0]["transient"] is False
        assert event_info()["resilience.retry.permanent"] == 1

    def test_no_retry_policy_is_single_shot(self):
        calls = []

        def flaky():
            calls.append(1)
            raise TransientError("blip")

        outcome = execute_with_retry(flaky, NO_RETRY)
        assert not outcome.ok and len(calls) == 1

    def test_call_with_retry_reraises(self):
        with pytest.raises(ValidationError):
            call_with_retry(lambda: (_ for _ in ()).throw(
                ValidationError("bad")), RetryPolicy())
        assert call_with_retry(lambda: 42, RetryPolicy()) == 42
