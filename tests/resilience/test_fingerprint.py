"""Canonical-fingerprint regression tests.

The fingerprint is a *persistent* content-address: the crash-safe
journal keys resume compatibility on it and the serve result store keys
cached compilations on it.  Two semantically identical job specs built
by different code paths must therefore hash identically — and any
semantic difference must not.
"""

from dataclasses import replace

import pytest

from repro.batch.jobs import BatchJob
from repro.resilience.journal import (FINGERPRINT_VERSION,
                                      _canonical_value, canonical_job_spec,
                                      canonical_json, job_fingerprint,
                                      spec_fingerprint)


def job(**kwargs):
    kwargs.setdefault("arch", "grid")
    kwargs.setdefault("n_qubits", 8)
    kwargs.setdefault("method", "greedy")
    return BatchJob(**kwargs)


class TestValueCanonicalization:
    def test_negative_zero_collapses_to_int_zero(self):
        assert _canonical_value(-0.0) == 0
        assert canonical_json(_canonical_value(-0.0)) == "0"
        assert canonical_json(_canonical_value(0.0)) == "0"

    def test_integral_float_collapses_to_int(self):
        assert _canonical_value(2.0) == 2
        assert canonical_json(_canonical_value(2.0)) \
            == canonical_json(_canonical_value(2))

    def test_huge_integral_float_kept_as_float(self):
        # Beyond 2**53 the int rewrite would not be loss-free.
        assert isinstance(_canonical_value(2.0 ** 60), float)

    def test_non_finite_floats_get_string_spellings(self):
        assert _canonical_value(float("nan")) == "float:nan"
        assert _canonical_value(float("inf")) == "float:inf"
        assert _canonical_value(float("-inf")) == "float:-inf"
        # ...and therefore serialize under allow_nan=False.
        canonical_json(_canonical_value(float("nan")))

    def test_tuple_and_list_collapse(self):
        assert _canonical_value((1, 2, 3)) == _canonical_value([1, 2, 3])

    def test_sets_order_deterministically(self):
        assert _canonical_value({3, 1, 2}) \
            == _canonical_value(frozenset([2, 3, 1])) == [1, 2, 3]

    def test_bool_does_not_alias_int(self):
        assert canonical_json(_canonical_value(True)) == "true"
        assert canonical_json(_canonical_value(1)) == "1"

    def test_nested_dicts_canonicalize_recursively(self):
        a = {"outer": {"b": 2.0, "a": (1, -0.0)}}
        b = {"outer": {"a": [1, 0], "b": 2}}
        assert canonical_json(_canonical_value(a)) \
            == canonical_json(_canonical_value(b))

    def test_exotic_objects_are_type_prefixed(self):
        out = _canonical_value(complex(1, 2))
        assert isinstance(out, str) and out.startswith("complex:")


class TestSpecFingerprint:
    def test_negative_zero_gamma_matches_positive_zero(self):
        assert spec_fingerprint(job(gamma=-0.0)) \
            == spec_fingerprint(job(gamma=0.0))

    def test_integral_float_gamma_matches_int(self):
        assert spec_fingerprint(job(gamma=2)) \
            == spec_fingerprint(job(gamma=2.0))

    def test_tuple_vs_list_knob_values_match(self):
        a = job().with_options(schedule=(1, 2, 3))
        b = job().with_options(schedule=[1, 2, 3])
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_nested_knob_dict_insertion_order_is_irrelevant(self):
        a = job().with_options(knobs={"alpha": 1, "beta": [2.0]})
        b = job().with_options(knobs={"beta": (2,), "alpha": 1})
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_with_options_application_order_is_irrelevant(self):
        a = job().with_options(alpha=1).with_options(beta=2)
        b = job().with_options(beta=2).with_options(alpha=1)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_label_is_presentation_only(self):
        plain = job()
        labeled = replace(plain, label="my fancy name")
        assert plain.name != labeled.name
        assert spec_fingerprint(plain) == spec_fingerprint(labeled)
        assert "label" not in canonical_job_spec(plain)

    @pytest.mark.parametrize("change", [
        {"seed": 1}, {"n_qubits": 10}, {"method": "hybrid"},
        {"gamma": 0.5}, {"use_noise": True}, {"layers": 2},
    ])
    def test_semantic_changes_change_the_fingerprint(self, change):
        assert spec_fingerprint(job(**change)) != spec_fingerprint(job())

    def test_knob_value_changes_change_the_fingerprint(self):
        assert spec_fingerprint(job().with_options(alpha=1)) \
            != spec_fingerprint(job().with_options(alpha=2))

    def test_boolean_knob_does_not_alias_integer_knob(self):
        assert spec_fingerprint(job().with_options(flag=True)) \
            != spec_fingerprint(job().with_options(flag=1))

    def test_version_is_hashed_in(self, monkeypatch):
        before = spec_fingerprint(job())
        monkeypatch.setattr("repro.resilience.journal.FINGERPRINT_VERSION",
                            FINGERPRINT_VERSION + 1000)
        assert spec_fingerprint(job()) != before


class TestJobListFingerprint:
    def test_order_sensitive(self):
        a, b = job(seed=0), job(seed=1)
        assert job_fingerprint([a, b]) != job_fingerprint([b, a])

    def test_same_canonicalization_as_specs(self):
        # Two lists of pairwise-equivalent specs must match.
        assert job_fingerprint([job(gamma=-0.0),
                                job().with_options(k=(1,))]) \
            == job_fingerprint([job(gamma=0.0),
                                job().with_options(k=[1])])
