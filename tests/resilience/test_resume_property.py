"""Property test: journal resume is equivalent to an uninterrupted run.

For *any* crash point inside a sweep, resuming from the journal must
produce a report whose deterministic core (job identity, order,
ok-ness, compiled metrics, error classification) equals the
uninterrupted run's.  Hypothesis drives the crash index and the seed
window; the crash itself is an injected fault at the ``batch.collect``
site, which fires in the batch parent *after* the result was durably
journaled — exactly where a real interruption is survivable.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import compile_many, jobs_for
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.faults import active_plan
from tests.resilience.support import normalize_report

N_JOBS = 4


@settings(deadline=None, max_examples=10)
@given(crash_at=st.integers(min_value=0, max_value=N_JOBS - 1),
       seed_base=st.integers(min_value=0, max_value=5))
def test_resume_after_crash_matches_uninterrupted_run(crash_at, seed_base):
    jobs = jobs_for(["line"], 6, methods=("greedy",),
                    seeds=tuple(range(seed_base, seed_base + N_JOBS)))
    baseline = compile_many(jobs, executor="serial")

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "sweep.jsonl"
        plan = FaultPlan([FaultSpec(site="batch.collect", at=crash_at,
                                    error="runtime",
                                    message="injected crash")])
        with active_plan(plan):
            with pytest.raises(RuntimeError, match="injected crash"):
                compile_many(jobs, executor="serial", journal=journal)

        resumed = compile_many(jobs, executor="serial", journal=journal,
                               resume=True)

    # The crash fired after result #crash_at was journaled.
    assert resumed.resumed_jobs == crash_at + 1
    assert len(resumed.results) == N_JOBS
    assert normalize_report(resumed.to_json()) \
        == normalize_report(baseline.to_json())
