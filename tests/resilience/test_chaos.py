"""Chaos suite: injected faults must be survived, deterministically.

Each test drives a *real* engine/pipeline/solver path with a
:class:`~repro.resilience.faults.FaultPlan` active and asserts the
recovery behavior the resilience layer promises: transient faults are
retried with backoff, killed workers restart the pool without poisoning
peers, solver exhaustion degrades to greedy with provenance, and a
journaled sweep resumes to the same report after a crash.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro._telemetry import clear_events, event_info
from repro.batch import BatchJob, compile_many, execute_job
from repro.exceptions import SolverExhaustedError
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy, faults
from repro.resilience.faults import ENV_VAR, active_plan
from tests.resilience.support import normalize_report, small_jobs

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _clean_telemetry():
    clear_events()
    yield


class TestTransientRetry:
    def test_injected_transient_fault_recovers_on_retry(self):
        jobs = small_jobs(3)
        plan = FaultPlan([FaultSpec(site="batch.job", at=0)])
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.001)
        with active_plan(plan):
            report = compile_many(jobs, executor="serial", retry=policy)
        assert [r.ok for r in report.results] == [True, True, True]
        flaky = report.results[0]
        assert flaky.retries == 1
        assert flaky.attempts[0]["error_type"] == "TransientError"
        assert flaky.attempts[0]["retried"] is True
        assert flaky.attempts[0]["backoff_s"] == pytest.approx(
            policy.delay_s(1, jobs[0].name))
        assert report.retry_totals() == {
            "retries": 1, "retried_jobs": 1, "recovered_jobs": 1}
        events = event_info()
        assert events["resilience.retry.retries"] == 1
        assert events["resilience.retry.recovered"] == 1
        assert "retries: 1 across 1 job(s), 1 recovered" \
            in report.summary()

    def test_without_a_policy_the_fault_fails_the_job(self):
        jobs = small_jobs(3)
        plan = FaultPlan([FaultSpec(site="batch.job", at=0)])
        with active_plan(plan):
            report = compile_many(jobs, executor="serial")
        assert [r.ok for r in report.results] == [False, True, True]
        assert report.results[0].error_type == "TransientError"
        assert report.results[0].attempts == []

    def test_attempt_budget_exhaustion_fails_structurally(self):
        jobs = small_jobs(1)
        plan = FaultPlan([FaultSpec(site="batch.job", times=99)])
        with active_plan(plan):
            report = compile_many(
                jobs, executor="serial",
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.0))
        (result,) = report.results
        assert not result.ok and len(result.attempts) == 2
        assert event_info()["resilience.retry.exhausted"] == 1

    def test_injected_timeout_is_not_retried_by_default(self):
        jobs = small_jobs(1)
        plan = FaultPlan([FaultSpec(site="batch.job", action="timeout")])
        with active_plan(plan):
            result = execute_job(jobs[0], retry=RetryPolicy(max_attempts=3))
        assert not result.ok
        assert result.error_type == "JobTimeoutError"
        assert len(result.attempts) == 1  # permanent under the policy
        with active_plan(FaultPlan(
                [FaultSpec(site="batch.job", action="timeout")])):
            result = execute_job(
                jobs[0], retry=RetryPolicy(max_attempts=3,
                                           retry_timeouts=True,
                                           base_delay_s=0.0))
        assert result.ok and result.retries == 1

    def test_pipeline_pass_fault_surfaces_per_job(self):
        jobs = small_jobs(2)
        plan = FaultPlan([FaultSpec(site="pipeline.pass", match="greedy",
                                    at=0)])
        with active_plan(plan):
            report = compile_many(jobs, executor="serial")
        assert [r.ok for r in report.results] == [False, True]


class TestPoolRestart:
    @pytest.mark.skipif(sys.platform == "win32",
                        reason="needs fork-based process pools")
    def test_killed_worker_restarts_pool_without_poisoning_peers(self):
        jobs = small_jobs(4)
        poison = jobs[2].name
        # times=99: the kill refires in every fresh worker (fork resets
        # the inherited hit counters), so the poison job converges to a
        # failure while every peer recovers.
        plan = FaultPlan([FaultSpec(site="batch.job", action="kill",
                                    match=poison, times=99)])
        with active_plan(plan):
            report = compile_many(jobs, workers=2, max_pool_restarts=1)
        assert [r.ok for r in report.results] == [True, True, False, True]
        broken = report.results[2]
        assert broken.error_type == "BrokenProcessPool"
        assert "restart budget (1) is spent" in broken.error
        assert report.pool_restarts == 1
        assert event_info()["batch.pool_restarts"] == 1
        assert "restarted 1 time(s)" in report.summary()

    @pytest.mark.skipif(sys.platform == "win32",
                        reason="needs fork-based process pools")
    def test_restart_budget_zero_fails_all_broken_without_retrying(self):
        jobs = small_jobs(2)
        plan = FaultPlan([FaultSpec(site="batch.job", action="kill",
                                    match=jobs[0].name, times=99)])
        with active_plan(plan):
            report = compile_many(jobs, workers=2, max_pool_restarts=0)
        assert report.pool_restarts == 0
        assert not report.results[0].ok
        assert "restart budget (0) is spent" in report.results[0].error
        # The peer's fate is timing-dependent with budget 0 (it may have
        # been in flight when the pool broke); only the poison job's
        # failure and the absence of restarts are guaranteed.


class TestSolverDegradation:
    def test_exhausted_budget_degrades_to_greedy_with_provenance(self):
        from repro.arch import architecture_for
        from repro.pipeline.registry import get_method
        from repro.problems import random_problem_graph

        coupling = architecture_for("line", 6)
        problem = random_problem_graph(6, 0.5, seed=0)
        result = get_method("optimal").compile(coupling, problem,
                                               max_nodes=2)
        degraded = result.extra["degraded"]
        assert degraded["method"] == "optimal"
        assert degraded["fallback"] == "greedy"
        assert degraded["error_type"] == "SolverExhaustedError"
        assert "node budget" in degraded["reason"]
        result.validate(coupling, problem)  # the circuit is still real
        assert event_info()["resilience.fallback"] == 1
        assert event_info()["resilience.fallback.greedy"] == 1
        assert "solver" not in result.extra  # no fake optimality stats

    def test_fallback_none_preserves_the_hard_error(self):
        from repro.arch import architecture_for
        from repro.pipeline.registry import get_method
        from repro.problems import random_problem_graph

        with pytest.raises(SolverExhaustedError, match="node budget"):
            get_method("optimal").compile(
                architecture_for("line", 6),
                random_problem_graph(6, 0.5, seed=0),
                max_nodes=2, fallback=None)

    def test_unknown_fallback_is_rejected(self):
        from repro.arch import architecture_for
        from repro.pipeline.registry import get_method
        from repro.problems import random_problem_graph

        with pytest.raises(ValueError, match="unknown solver fallback"):
            get_method("optimal").compile(
                architecture_for("line", 6),
                random_problem_graph(6, 0.5, seed=0),
                max_nodes=2, fallback="quantum-annealing")

    def test_degraded_job_in_a_batch_report(self):
        job = BatchJob(arch="line", n_qubits=6, seed=0, method="optimal",
                       options=(("max_nodes", 2),))
        report = compile_many([job], executor="serial")
        (result,) = report.results
        assert result.ok and result.degraded
        assert report.degraded_jobs == 1
        assert report.to_json()["degraded_jobs"] == 1
        assert "degraded: 1 job(s)" in report.summary()

    def test_injected_exhaustion_mid_search_also_degrades(self):
        from repro.arch import architecture_for
        from repro.pipeline.registry import get_method
        from repro.problems import random_problem_graph

        plan = FaultPlan([FaultSpec(site="solver.expand",
                                    error="solver_exhausted", at=2)])
        with active_plan(plan):
            result = get_method("optimal").compile(
                architecture_for("line", 6),
                random_problem_graph(6, 0.5, seed=0))
        assert result.extra["degraded"]["fallback"] == "greedy"


class TestJournalResume:
    def test_in_process_crash_and_resume_reproduce_the_report(self,
                                                              tmp_path):
        jobs = small_jobs(4)
        journal = tmp_path / "sweep.jsonl"

        baseline = compile_many(jobs, executor="serial")

        # Crash the parent after the second result is journaled.
        plan = FaultPlan([FaultSpec(site="batch.collect", at=1,
                                    error="runtime",
                                    message="simulated parent crash")])
        with active_plan(plan):
            with pytest.raises(RuntimeError, match="simulated parent"):
                compile_many(jobs, executor="serial", journal=journal)

        resumed = compile_many(jobs, executor="serial", journal=journal,
                               resume=True)
        assert resumed.resumed_jobs == 2
        assert "resumed: 2 job(s)" in resumed.summary()
        assert normalize_report(resumed.to_json()) \
            == normalize_report(baseline.to_json())

    def test_resume_with_nothing_pending_is_a_no_op_run(self, tmp_path):
        jobs = small_jobs(2)
        journal = tmp_path / "sweep.jsonl"
        first = compile_many(jobs, executor="serial", journal=journal)
        resumed = compile_many(jobs, executor="serial", journal=journal,
                               resume=True)
        assert resumed.resumed_jobs == 2
        assert normalize_report(resumed.to_json()) \
            == normalize_report(first.to_json())


class TestCliChaos:
    """End-to-end: a killed CLI sweep resumes to the uninterrupted report."""

    CMD = ["batch", "--arch", "line", "--qubits", "6", "--count", "4",
           "--method", "greedy", "--serial"]

    def _run(self, tmp_path, name, fault_env=None, resume=False):
        out = tmp_path / f"{name}.json"
        journal = tmp_path / f"{name}.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(ENV_VAR, None)
        if fault_env is not None:
            env[ENV_VAR] = fault_env
        cmd = [sys.executable, "-m", "repro", *self.CMD,
               "--json", str(out), "--journal", str(journal)]
        if resume:
            cmd.append("--resume")
        proc = subprocess.run(cmd, env=env, cwd=REPO_ROOT,
                              capture_output=True, text=True, timeout=120)
        return proc, out, journal

    def test_killed_sweep_resumes_to_the_uninterrupted_report(self,
                                                              tmp_path):
        proc, baseline_json, _ = self._run(tmp_path, "baseline")
        assert proc.returncode == 0, proc.stderr

        kill_after_two = FaultPlan([FaultSpec(
            site="batch.collect", action="kill", at=1,
            exit_code=77)]).to_env()
        proc, crashed_json, journal = self._run(
            tmp_path, "crashed", fault_env=kill_after_two)
        assert proc.returncode == 77  # died mid-sweep, no report written
        assert not crashed_json.exists()
        journaled = [json.loads(line)
                     for line in journal.read_text().splitlines()]
        assert [e["kind"] for e in journaled] \
            == ["header", "result", "result"]

        # Resume against the crashed journal (same job list, no faults).
        out = tmp_path / "crashed.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(ENV_VAR, None)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *self.CMD,
             "--json", str(out), "--journal", str(journal), "--resume"],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "resumed: 2 job(s)" in proc.stdout

        resumed = json.loads(out.read_text())
        baseline = json.loads(baseline_json.read_text())
        assert resumed["resumed_jobs"] == 2
        assert normalize_report(resumed) == normalize_report(baseline)

    def test_resume_against_a_different_sweep_exits_2(self, tmp_path):
        proc, _, journal = self._run(tmp_path, "first")
        assert proc.returncode == 0, proc.stderr
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "batch", "--arch", "line",
             "--qubits", "6", "--count", "5", "--method", "greedy",
             "--serial", "--journal", str(journal), "--resume"],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 2
        assert "different job list" in proc.stderr

    def test_resume_without_journal_exits_2(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "batch", "--resume"],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 2
        assert "--resume requires --journal" in proc.stderr

    def test_malformed_fault_plan_exits_2_before_any_work(self, tmp_path):
        # A typo'd chaos plan must abort the sweep as a config error,
        # not degrade into per-job ValueError failures.
        proc, out, journal = self._run(
            tmp_path, "badplan", fault_env='[{"site": "batch.job"}]')
        assert proc.returncode == 2
        assert ENV_VAR in proc.stderr
        assert not out.exists()
        assert not journal.exists()

    def test_malformed_fault_plan_aborts_compile_many(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "not json")
        faults.reset()
        with pytest.raises(ValueError, match=ENV_VAR):
            compile_many(small_jobs(2), executor="serial")


class TestReportSchema:
    def test_to_json_is_versioned_and_json_round_trips(self):
        report = compile_many(small_jobs(2), executor="serial")
        payload = report.to_json()
        assert payload["schema_version"] == 2
        for key in ("pool_restarts", "resumed_jobs", "retry_totals",
                    "degraded_jobs"):
            assert key in payload
        assert payload["retry_totals"] == {
            "retries": 0, "retried_jobs": 0, "recovered_jobs": 0}
        assert json.loads(json.dumps(payload)) == payload
