"""Unit tests for the crash-safe batch journal."""

import json

import pytest

from repro.batch import BatchJob, JobResult, jobs_for
from repro.resilience.journal import (JOURNAL_VERSION, BatchJournal,
                                      JournalError, job_fingerprint)


def _jobs(n=3):
    return jobs_for(["line"], 6, methods=("greedy",),
                    seeds=tuple(range(n)))


def _result(job, depth=7):
    return JobResult(job=job, ok=True, wall_time_s=0.25,
                     record={"depth": depth, "cx": 9, "swaps": 1,
                             "extra": {"timings": {"greedy": 0.1}}},
                     cache={"distance_matrix": {"hits": 1, "misses": 0}},
                     attempts=[{"attempt": 1, "error_type": "TransientError",
                                "error": "blip", "transient": True,
                                "retried": True, "backoff_s": 0.05}])


class TestJobResultRoundTrip:
    def test_to_json_from_json_is_lossless(self):
        job = _jobs(1)[0]
        original = _result(job)
        rebuilt = JobResult.from_json(job, json.loads(
            json.dumps(original.to_json())))
        assert rebuilt == original
        assert rebuilt.retries == 1

    def test_failure_round_trip(self):
        job = _jobs(1)[0]
        original = JobResult(job=job, ok=False, error="boom",
                             error_type="TransientError")
        assert JobResult.from_json(job, original.to_json()) == original


class TestFingerprint:
    def test_sensitive_to_specs_and_order(self):
        jobs = _jobs(3)
        assert job_fingerprint(jobs) == job_fingerprint(list(jobs))
        assert job_fingerprint(jobs) != job_fingerprint(jobs[::-1])
        changed = [*jobs[:-1],
                   BatchJob(arch="line", n_qubits=6, method="greedy",
                            seed=99)]
        assert job_fingerprint(jobs) != job_fingerprint(changed)


class TestBatchJournal:
    def test_fresh_journal_writes_header(self, tmp_path):
        jobs = _jobs()
        path = tmp_path / "sweep.jsonl"
        with BatchJournal(path, jobs) as journal:
            journal.record(0, _result(jobs[0]))
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert lines[0] == {"kind": "header", "version": JOURNAL_VERSION,
                            "fingerprint": job_fingerprint(jobs),
                            "n_jobs": 3}
        assert lines[1]["kind"] == "result"
        assert lines[1]["index"] == 0
        assert lines[1]["job"] == jobs[0].name

    def test_resume_recovers_completed_results(self, tmp_path):
        jobs = _jobs()
        path = tmp_path / "sweep.jsonl"
        with BatchJournal(path, jobs) as journal:
            journal.record(0, _result(jobs[0], depth=5))
            journal.record(2, _result(jobs[2], depth=8))
        resumed = BatchJournal(path, jobs, resume=True)
        try:
            assert sorted(resumed.completed) == [0, 2]
            assert resumed.completed[0] == _result(jobs[0], depth=5)
            assert resumed.completed[2].record["depth"] == 8
        finally:
            resumed.close()

    def test_without_resume_truncates(self, tmp_path):
        jobs = _jobs()
        path = tmp_path / "sweep.jsonl"
        with BatchJournal(path, jobs) as journal:
            journal.record(0, _result(jobs[0]))
        with BatchJournal(path, jobs) as journal:
            assert journal.completed == {}
        assert len(path.read_text().splitlines()) == 1  # header only

    def test_truncated_tail_is_discarded(self, tmp_path):
        jobs = _jobs()
        path = tmp_path / "sweep.jsonl"
        with BatchJournal(path, jobs) as journal:
            journal.record(0, _result(jobs[0]))
            journal.record(1, _result(jobs[1]))
        # Simulate a crash mid-append: chop the last line in half.
        content = path.read_text()
        path.write_text(content[:len(content) - 40])
        resumed = BatchJournal(path, jobs, resume=True)
        try:
            assert sorted(resumed.completed) == [0]
        finally:
            resumed.close()

    def test_duplicate_index_keeps_last(self, tmp_path):
        jobs = _jobs()
        path = tmp_path / "sweep.jsonl"
        with BatchJournal(path, jobs) as journal:
            journal.record(1, _result(jobs[1], depth=4))
            journal.record(1, _result(jobs[1], depth=6))
        resumed = BatchJournal(path, jobs, resume=True)
        try:
            assert resumed.completed[1].record["depth"] == 6
        finally:
            resumed.close()

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        BatchJournal(path, _jobs(3)).close()
        with pytest.raises(JournalError, match="different job list"):
            BatchJournal(path, _jobs(4), resume=True)

    def test_missing_header_refuses_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"kind": "result", "index": 0}\n')
        with pytest.raises(JournalError, match="missing header"):
            BatchJournal(path, _jobs(), resume=True)

    def test_version_mismatch_refuses_resume(self, tmp_path):
        jobs = _jobs()
        path = tmp_path / "sweep.jsonl"
        path.write_text(json.dumps(
            {"kind": "header", "version": 999,
             "fingerprint": job_fingerprint(jobs), "n_jobs": 3}) + "\n")
        with pytest.raises(JournalError, match="version"):
            BatchJournal(path, jobs, resume=True)

    def test_resume_on_missing_file_starts_fresh(self, tmp_path):
        jobs = _jobs()
        path = tmp_path / "absent.jsonl"
        with BatchJournal(path, jobs, resume=True) as journal:
            assert journal.completed == {}
        assert json.loads(
            path.read_text().splitlines()[0])["kind"] == "header"

    def test_out_of_range_or_malformed_entries_are_skipped(self, tmp_path):
        jobs = _jobs()
        path = tmp_path / "sweep.jsonl"
        with BatchJournal(path, jobs) as journal:
            journal._append({"kind": "result", "index": 99,
                             "result": {"ok": True}})
            journal._append({"kind": "result", "index": "x",
                             "result": {"ok": True}})
            journal._append({"kind": "note", "text": "ignored"})
            journal.record(0, _result(jobs[0]))
        resumed = BatchJournal(path, jobs, resume=True)
        try:
            assert sorted(resumed.completed) == [0]
        finally:
            resumed.close()
