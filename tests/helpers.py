"""Shared test utilities: dense unitary construction for small circuits.

Convention: qubit ``q`` corresponds to tensor axis ``q`` of the state
reshaped to ``(2,) * n`` — i.e. qubit 0 is the most significant bit of the
computational-basis index (big-endian), matching :mod:`repro.sim`.
"""

from __future__ import annotations

import numpy as np

from repro.ir.gates import CPHASE, CX, H, PHASE, RX, RZ, SWAP, Op


def _one_qubit_matrix(op: Op) -> np.ndarray:
    theta = op.param or 0.0
    if op.kind == H:
        return np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
    if op.kind == RX:
        c, s = np.cos(theta / 2), -1j * np.sin(theta / 2)
        return np.array([[c, s], [s, c]], dtype=complex)
    if op.kind == RZ:
        return np.diag([np.exp(-1j * theta / 2), np.exp(1j * theta / 2)])
    if op.kind == PHASE:
        return np.diag([1.0, np.exp(1j * theta)]).astype(complex)
    raise ValueError(f"unsupported 1q op {op!r}")


def _two_qubit_matrix(op: Op) -> np.ndarray:
    if op.kind == CX:
        return np.array([[1, 0, 0, 0],
                         [0, 1, 0, 0],
                         [0, 0, 0, 1],
                         [0, 0, 1, 0]], dtype=complex)
    if op.kind == SWAP:
        return np.array([[1, 0, 0, 0],
                         [0, 0, 1, 0],
                         [0, 1, 0, 0],
                         [0, 0, 0, 1]], dtype=complex)
    if op.kind == CPHASE:
        g = op.param or 0.0
        return np.diag([1, 1, 1, np.exp(1j * g)]).astype(complex)
    raise ValueError(f"unsupported 2q op {op!r}")


def op_unitary(op: Op, n: int) -> np.ndarray:
    """Full 2^n x 2^n unitary for one op."""
    dim = 2 ** n
    unitary = np.zeros((dim, dim), dtype=complex)
    if len(op.qubits) == 1:
        small = _one_qubit_matrix(op)
    else:
        small = _two_qubit_matrix(op)
    qubits = op.qubits
    for col in range(dim):
        bits = [(col >> (n - 1 - q)) & 1 for q in range(n)]
        sub_col = 0
        for q in qubits:
            sub_col = (sub_col << 1) | bits[q]
        for sub_row in range(small.shape[0]):
            amp = small[sub_row, sub_col]
            if amp == 0:
                continue
            new_bits = list(bits)
            for k, q in enumerate(reversed(qubits)):
                new_bits[q] = (sub_row >> k) & 1
            row = 0
            for q in range(n):
                row = (row << 1) | new_bits[q]
            unitary[row, col] += amp
    return unitary


def circuit_unitary(circuit) -> np.ndarray:
    """Unitary of a whole (small!) circuit, ops applied left-to-right."""
    n = circuit.n_qubits
    total = np.eye(2 ** n, dtype=complex)
    for op in circuit:
        total = op_unitary(op, n) @ total
    return total


def assert_unitary_equal(u: np.ndarray, v: np.ndarray, atol: float = 1e-9) -> None:
    """Equality up to global phase."""
    index = np.unravel_index(np.argmax(np.abs(u)), u.shape)
    phase = v[index] / u[index]
    assert abs(abs(phase) - 1.0) < 1e-6, "matrices differ in magnitude"
    np.testing.assert_allclose(u * phase, v, atol=atol)
