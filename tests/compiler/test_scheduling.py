"""Tests for the graph-colouring gate scheduler."""

from repro.arch import NoiseModel, grid
from repro.compiler.scheduling import select_gates


def test_empty_input():
    assert select_gates([]) == []


def test_non_conflicting_gates_all_selected():
    gates = [(0, 1, (0, 1)), (2, 3, (2, 3)), (4, 5, (4, 5))]
    assert len(select_gates(gates)) == 3


def test_shared_qubit_conflict_resolved():
    gates = [(0, 1, (0, 1)), (1, 2, (1, 2))]
    chosen = select_gates(gates)
    assert len(chosen) == 1


def test_chain_picks_maximal_class():
    # Path conflicts 0-1, 1-2, 2-3: colouring yields alternating classes;
    # largest class has 2 gates.
    gates = [(0, 1, (0, 1)), (1, 2, (1, 2)), (2, 3, (2, 3)),
             (3, 4, (3, 4))]
    chosen = select_gates(gates)
    assert len(chosen) == 2
    qubits = [q for u, v, _ in chosen for q in (u, v)]
    assert len(qubits) == len(set(qubits))


def test_selected_gates_always_disjoint():
    gates = [(0, 1, (0, 1)), (0, 2, (0, 2)), (1, 2, (1, 2)),
             (3, 4, (3, 4)), (4, 5, (4, 5))]
    chosen = select_gates(gates)
    qubits = [q for u, v, _ in chosen for q in (u, v)]
    assert len(qubits) == len(set(qubits))


def test_crosstalk_aware_scheduling_splits_neighbours():
    coupling = grid(3, 3)
    noise = NoiseModel(coupling)
    # (0,1) and (3,4) are parallel nearest-neighbour edges (crosstalk).
    gates = [(0, 1, (0, 1)), (3, 4, (3, 4))]
    with_ct = select_gates(gates, noise=noise, crosstalk_aware=True)
    without_ct = select_gates(gates, noise=noise, crosstalk_aware=False)
    assert len(with_ct) == 1
    assert len(without_ct) == 2
