"""Tests for error-weighted SWAP insertion."""

import pytest

from repro.arch import line, uniform_noise_model
from repro.compiler.swap_insertion import select_swaps, swap_benefit
from repro.ir.mapping import Mapping


@pytest.fixture
def chain():
    return line(5)


class TestBenefit:
    def test_positive_when_moving_closer(self, chain):
        mapping = Mapping.trivial(5)
        pending = {0: {4}, 4: {0}}
        # Swapping (0,1) moves logical 0 one step towards logical 4.
        assert swap_benefit(0, 1, chain, mapping, pending) == 1

    def test_negative_when_moving_away(self, chain):
        mapping = Mapping.trivial(5)
        pending = {1: {0}, 0: {1}}
        # They are already adjacent; pushing 1 to position 2 moves it away
        # and drags 2's occupant (no pending) for nothing.
        assert swap_benefit(1, 2, chain, mapping, pending) < 0

    def test_spare_qubits_contribute_zero(self, chain):
        mapping = Mapping([0, 4], 5)  # two logical qubits at the ends
        pending = {0: {1}, 1: {0}}
        assert swap_benefit(1, 2, chain, mapping, pending) == 0


class TestSelection:
    def test_selects_helpful_swap(self, chain):
        mapping = Mapping.trivial(5)
        pending = {0: {4}, 4: {0}}
        swaps = select_swaps(chain, mapping, pending, busy=set())
        assert swaps  # something moves the distant pair together

    def test_busy_qubits_excluded(self, chain):
        mapping = Mapping.trivial(5)
        pending = {0: {4}, 4: {0}}
        swaps = select_swaps(chain, mapping, pending,
                             busy={0, 1, 2, 3, 4})
        assert swaps == []

    def test_no_pending_no_swaps(self, chain):
        mapping = Mapping.trivial(5)
        swaps = select_swaps(chain, mapping, {}, busy=set())
        assert swaps == []

    def test_swaps_are_disjoint(self, chain):
        mapping = Mapping.trivial(5)
        pending = {0: {4}, 4: {0}, 1: {3}, 3: {1}}
        swaps = select_swaps(chain, mapping, pending, busy=set())
        qubits = [q for pair in swaps for q in pair]
        assert len(qubits) == len(set(qubits))

    def test_exact_matching_mode(self, chain):
        mapping = Mapping.trivial(5)
        pending = {0: {4}, 4: {0}}
        greedy = select_swaps(chain, mapping, pending, busy=set(),
                              matching="greedy")
        exact = select_swaps(chain, mapping, pending, busy=set(),
                             matching="exact")
        assert greedy and exact

    def test_noise_prefers_reliable_link(self):
        # Two symmetric swap options; make one link terrible.
        coupling = line(3)
        noise = uniform_noise_model(coupling, cx_error=0.005)
        noise.cx_error[(0, 1)] = 0.08  # bad link
        mapping = Mapping.trivial(3)
        # Logical 0 at 0 and logical 2 at 2 need each other; either side
        # can move.  With error weighting the (1,2) swap wins.
        pending = {0: {2}, 2: {0}}
        swaps = select_swaps(coupling, mapping, pending, busy=set(),
                             noise=noise)
        assert swaps == [(1, 2)]
