"""Tests for the ATA-prediction component (range detection, suffixes)."""

import pytest

from repro.arch import grid, heavyhex, line
from repro.ata import get_pattern
from repro.compiler.prediction import ata_suffix, detect_ranges
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import clique, random_problem_graph


class TestDetectRanges:
    def test_single_component_single_region(self):
        coupling = line(10)
        pattern = get_pattern(coupling)
        mapping = Mapping.trivial(10)
        plan = detect_ranges(pattern, mapping, [(0, 1), (1, 3)])
        assert len(plan) == 1
        region, edges = plan[0]
        assert edges == {(0, 1), (1, 3)}
        assert region.region == frozenset({0, 1, 2, 3})

    def test_disjoint_components_get_disjoint_regions(self):
        coupling = line(12)
        pattern = get_pattern(coupling)
        mapping = Mapping.trivial(12)
        plan = detect_ranges(pattern, mapping, [(0, 2), (8, 11)])
        assert len(plan) == 2
        regions = [p.region for p, _ in plan]
        assert regions[0] & regions[1] == frozenset()

    def test_overlapping_regions_merge(self):
        coupling = line(10)
        pattern = get_pattern(coupling)
        mapping = Mapping.trivial(10)
        # Components {0,5} and {3,8}: segments [0,5] and [3,8] overlap.
        plan = detect_ranges(pattern, mapping, [(0, 5), (3, 8)])
        assert len(plan) == 1
        region, edges = plan[0]
        assert edges == {(0, 5), (3, 8)}
        assert region.region == frozenset(range(9))

    def test_empty_remaining(self):
        coupling = line(4)
        plan = detect_ranges(get_pattern(coupling), Mapping.trivial(4), [])
        assert plan == []

    def test_grid_components_in_separate_corners(self):
        coupling = grid(5, 5)
        pattern = get_pattern(coupling)
        # Logical 0,1 in the top-left corner; 2,3 in the bottom-right.
        mapping = Mapping([0, 1, 23, 24], 25)
        plan = detect_ranges(pattern, mapping, [(0, 1), (2, 3)])
        assert len(plan) == 2

    def test_highest_index_qubit_finishing_first_is_harmless(self):
        """Regression: the component graph is sized by the problem's true
        vertex count, not ``1 + max(pending index)``.

        When the highest-index logical qubits complete their edges first,
        ``remaining`` stops mentioning them; the detector must neither
        shrink the vertex space under them nor route their pairs again.
        """
        coupling = line(10)
        pattern = get_pattern(coupling)
        mapping = Mapping.trivial(10)
        # Qubits 5..9 already finished; their indices exceed every pending
        # endpoint.  Components {0,3} and {2,4} overlap as segments.
        plan = detect_ranges(pattern, mapping, [(0, 3), (2, 4)])
        assert len(plan) == 1
        region, edges = plan[0]
        assert edges == {(0, 3), (2, 4)}
        assert region.region == frozenset(range(5))
        # Same remaining edges under a permuted mapping that parks the
        # finished qubits inside the pending qubits' physical span: the
        # region may cover their positions, but no edge group may ever
        # resurrect a finished pair.
        shuffled = Mapping([0, 2, 4, 6, 8, 1, 3, 5, 7, 9], 10)
        plan = detect_ranges(pattern, shuffled, [(0, 3), (2, 4)])
        grouped = set().union(*(e for _, e in plan))
        assert grouped == {(0, 3), (2, 4)}

    def test_union_find_merge_matches_quadratic_reference(self):
        """The ownership-sweep merge must reach the same fixpoint, in the
        same output order, as the restart-on-every-merge reference."""
        import random

        from repro.problems.graphs import ProblemGraph

        def reference_detect_ranges(pattern, mapping, remaining):
            remaining = list(remaining)
            if not remaining:
                return []
            components = ProblemGraph(
                mapping.n_logical, remaining).connected_components()
            groups = [set(c) for c in components]

            def restrict(group):
                return pattern.restrict(
                    {mapping.physical(v) for v in group})

            regions = [restrict(g) for g in groups]
            changed = True
            while changed:
                changed = False
                for i in range(len(groups)):
                    for j in range(i + 1, len(groups)):
                        if regions[i].region & regions[j].region:
                            groups[i] |= groups.pop(j)
                            regions.pop(j)
                            regions[i] = restrict(groups[i])
                            changed = True
                            break
                    if changed:
                        break
            return [(r, {e for e in remaining if e[0] in g})
                    for r, g in zip(regions, groups)]

        rng = random.Random(17)
        couplings = [line(24), grid(6, 6), heavyhex(2, 6)]
        for coupling in couplings:
            pattern = get_pattern(coupling)
            n = coupling.n_qubits
            positions = list(range(n))
            for trial in range(8):
                rng.shuffle(positions)
                n_logical = n - rng.randrange(0, 4)
                mapping = Mapping(positions[:n_logical], n)
                pairs = {tuple(sorted(rng.sample(range(n_logical), 2)))
                         for _ in range(rng.randrange(1, 12))}
                remaining = sorted(pairs)
                got = detect_ranges(pattern, mapping, remaining)
                want = reference_detect_ranges(pattern, mapping, remaining)
                assert ([(r.region, e) for r, e in got]
                        == [(r.region, e) for r, e in want]), (
                    coupling.name, trial, remaining)


class TestAtaSuffix:
    def test_suffix_completes_remaining_edges(self):
        coupling = grid(4, 4)
        problem = random_problem_graph(16, 0.3, seed=8)
        mapping = Mapping.trivial(16)
        circuit, final = ata_suffix(coupling, get_pattern(coupling),
                                    mapping, problem.edges)
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)
        assert final.n_logical == 16

    def test_range_detection_reduces_depth_for_local_components(self):
        coupling = line(20)
        pattern = get_pattern(coupling)
        mapping = Mapping.trivial(20)
        edges = [(0, 1), (1, 2), (17, 19)]
        with_ranges, _ = ata_suffix(coupling, pattern, mapping, edges,
                                    use_range_detection=True)
        without, _ = ata_suffix(coupling, pattern, mapping, edges,
                                use_range_detection=False)
        validate_compiled(with_ranges, coupling.edges, mapping, edges)
        validate_compiled(without, coupling.edges, mapping, edges)
        assert with_ranges.depth() <= without.depth()
        assert len(with_ranges) <= len(without)

    def test_suffix_on_heavyhex_clique(self):
        coupling = heavyhex(2, 6)
        n = coupling.n_qubits
        problem = clique(n)
        mapping = Mapping.trivial(n)
        circuit, _ = ata_suffix(coupling, get_pattern(coupling), mapping,
                                problem.edges)
        validate_compiled(circuit, coupling.edges, mapping, problem.edges)

    def test_suffix_appends_to_prefix(self):
        from repro.ir.circuit import Circuit
        from repro.ir.gates import Op
        coupling = line(4)
        prefix = Circuit(4, [Op.cphase(0, 1, tag=(0, 1))])
        mapping = Mapping.trivial(4)
        circuit, _ = ata_suffix(coupling, get_pattern(coupling), mapping,
                                [(2, 3)], circuit=prefix)
        assert circuit is prefix
        validate_compiled(circuit, coupling.edges, Mapping.trivial(4),
                          [(0, 1), (2, 3)])


class TestSelector:
    def test_cost_f_alpha_bounds(self):
        from repro.compiler.selector import cost_f
        with pytest.raises(ValueError):
            cost_f(1, 1, 1, 1, None, alpha=1.5)

    def test_cost_f_depth_only(self):
        from repro.compiler.selector import cost_f
        assert cost_f(50, 999, 100, 100, None, alpha=1.0) == pytest.approx(0.5)

    def test_cost_f_gate_ratio_without_noise(self):
        from repro.compiler.selector import cost_f
        f = cost_f(100, 50, 100, 100, None, alpha=0.0)
        assert f == pytest.approx(0.5)

    def test_cost_f_esp_term(self):
        from repro.compiler.selector import cost_f
        perfect = cost_f(100, 100, 100, 100, esp=1.0, alpha=0.0)
        noisy = cost_f(100, 100, 100, 100, esp=0.5, alpha=0.0)
        assert perfect == pytest.approx(0.0)
        assert noisy > perfect

    def test_score_candidates_picks_min(self):
        from repro.compiler.selector import Candidate, score_candidates
        a = Candidate("a", None, depth=100, gate_count=100, esp=None)
        b = Candidate("b", None, depth=50, gate_count=50, esp=None)
        best = score_candidates([a, b], greedy_depth=100, greedy_gates=100)
        assert best.label == "b"

    def test_score_candidates_empty_rejected(self):
        from repro.compiler.selector import score_candidates
        with pytest.raises(ValueError):
            score_candidates([], 1, 1)
