"""Engine-level tests for the greedy component (Section 6.2)."""


from repro.arch import grid, line, uniform_noise_model
from repro.compiler.greedy import greedy_compile
from repro.compiler.mapping import trivial_placement
from repro.ir.gates import CPHASE, SWAP
from repro.ir.validate import validate_compiled
from repro.problems import ProblemGraph, clique, random_problem_graph


def run(coupling, problem, **kwargs):
    mapping = trivial_placement(coupling, problem)
    trace = greedy_compile(coupling, problem, mapping, **kwargs)
    if not trace.remaining:
        validate_compiled(trace.circuit, coupling.edges, mapping,
                          problem.edges)
    return trace


class TestBasicOperation:
    def test_adjacent_gates_no_swaps(self):
        coupling = line(4)
        problem = ProblemGraph(4, [(0, 1), (2, 3)])
        trace = run(coupling, problem)
        assert trace.circuit.swap_count == 0
        assert trace.cycles == 1

    def test_empty_problem(self):
        trace = run(line(3), ProblemGraph(3, []))
        assert len(trace.circuit) == 0
        assert trace.cycles == 0

    def test_completes_clique(self):
        trace = run(grid(3, 3), clique(9))
        assert not trace.remaining

    def test_final_mapping_consistent_with_swaps(self):
        coupling = line(5)
        problem = random_problem_graph(5, 0.6, seed=3)
        mapping = trivial_placement(coupling, problem)
        trace = greedy_compile(coupling, problem, mapping)
        report = validate_compiled(trace.circuit, coupling.edges, mapping,
                                   problem.edges)
        assert report.final_mapping.log_to_phys == trace.final_mapping.log_to_phys


class TestSnapshots:
    def test_snapshot_zero_recorded(self):
        trace = run(line(6), random_problem_graph(6, 0.5, seed=1),
                    record_snapshots=True)
        assert trace.snapshots[0].cycle == 0
        assert trace.snapshots[0].op_count == 0

    def test_snapshots_track_mapping_changes(self):
        coupling = line(6)
        problem = random_problem_graph(6, 0.5, seed=1)
        mapping = trivial_placement(coupling, problem)
        trace = greedy_compile(coupling, problem, mapping,
                               record_snapshots=True)
        for snapshot in trace.snapshots:
            # Replay the prefix: the recorded mapping must match.
            replay = mapping.copy()
            for op in trace.circuit.ops[:snapshot.op_count]:
                if op.kind == SWAP:
                    replay.swap_physical(*op.qubits)
            assert replay.log_to_phys == snapshot.mapping.log_to_phys

    def test_snapshot_remaining_matches_prefix(self):
        coupling = line(8)
        problem = random_problem_graph(8, 0.4, seed=2)
        mapping = trivial_placement(coupling, problem)
        trace = greedy_compile(coupling, problem, mapping,
                               record_snapshots=True)
        for snapshot in trace.snapshots:
            executed = {op.tag for op in trace.circuit.ops[:snapshot.op_count]
                        if op.kind == CPHASE}
            assert executed.isdisjoint(snapshot.remaining)
            assert len(executed) + len(snapshot.remaining) == problem.n_edges

    def test_no_snapshots_when_disabled(self):
        trace = run(line(6), random_problem_graph(6, 0.5, seed=1),
                    record_snapshots=False)
        assert trace.snapshots == []


class TestMaxCycles:
    def test_cap_leaves_remainder(self):
        coupling = line(8)
        problem = clique(8)
        trace = run(coupling, problem, max_cycles=2,
                    record_snapshots=True)
        assert trace.remaining
        assert trace.cycles == 2
        # Terminal snapshot present for suffix splicing.
        assert trace.snapshots[-1].remaining == trace.remaining

    def test_zero_cap_is_pure_snapshot(self):
        trace = run(line(6), clique(6), max_cycles=0,
                    record_snapshots=True)
        assert len(trace.circuit) == 0
        assert len(trace.remaining) == clique(6).n_edges


class TestUnification:
    def test_unified_swaps_execute_pending_gate(self):
        coupling = line(6)
        problem = clique(6)
        plain = run(coupling, problem, unify_swaps=False)
        unified = run(coupling, problem, unify_swaps=True)
        assert unified.circuit.cx_count(unify=True) <= \
            plain.circuit.cx_count(unify=True)

    def test_unify_preserves_validity(self):
        coupling = grid(3, 3)
        problem = random_problem_graph(9, 0.5, seed=4)
        run(coupling, problem, unify_swaps=True)


class TestGateSelectionModes:
    def test_greedy_mode_valid(self):
        run(grid(3, 3), random_problem_graph(9, 0.5, seed=5),
            gate_selection="greedy")

    def test_color_mode_with_noise(self):
        coupling = grid(3, 3)
        noise = uniform_noise_model(coupling)
        run(coupling, random_problem_graph(9, 0.5, seed=5), noise=noise)
