"""End-to-end tests of the hybrid compiler (Fig 18) and its guarantees."""

import pytest

from repro.arch import (NoiseModel, grid, heavyhex, hexagon, line, sycamore)
from repro.compiler import compile_qaoa
from repro.problems import clique, random_problem_graph


ARCHES = {
    "line": lambda: line(12),
    "grid": lambda: grid(4, 4),
    "sycamore": lambda: sycamore(4, 4),
    "hexagon": lambda: hexagon(4, 4),
    "heavyhex": lambda: heavyhex(2, 6),
}


def compile_and_check(coupling, problem, **kwargs):
    result = compile_qaoa(coupling, problem, **kwargs)
    result.validate(coupling, problem)
    return result


class TestAllMethodsAllArchitectures:
    @pytest.mark.parametrize("arch", ARCHES)
    @pytest.mark.parametrize("method", ["greedy", "ata", "hybrid"])
    def test_random_graph_compiles_and_validates(self, arch, method):
        coupling = ARCHES[arch]()
        n = min(coupling.n_qubits, 12)
        problem = random_problem_graph(n, 0.35, seed=3)
        compile_and_check(coupling, problem, method=method)

    @pytest.mark.parametrize("arch", ARCHES)
    def test_clique_compiles(self, arch):
        coupling = ARCHES[arch]()
        n = min(coupling.n_qubits, 10)
        compile_and_check(coupling, clique(n), method="hybrid")


class TestTheorem61:
    """Hybrid must never lose (in the selector's F) to pure ATA."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hybrid_no_worse_than_ata_in_score(self, seed):
        coupling = grid(4, 4)
        problem = random_problem_graph(14, 0.3, seed=seed)
        hybrid = compile_and_check(coupling, problem, method="hybrid")
        scores = hybrid.extra["scores"]
        best = min(scores.values())
        if "ata" in scores:
            assert best <= scores["ata"] + 1e-12
        assert best <= scores["greedy"] + 1e-12

    def test_depth_alpha_one_tracks_best_depth(self):
        # With alpha=1 the selector optimises depth only.
        coupling = grid(4, 4)
        problem = random_problem_graph(14, 0.3, seed=7)
        hybrid = compile_and_check(coupling, problem, method="hybrid",
                                   alpha=1.0)
        greedy = compile_and_check(coupling, problem, method="greedy")
        ata = compile_and_check(coupling, problem, method="ata")
        assert hybrid.depth() <= min(greedy.depth(), ata.depth())


class TestSparseVsDenseBehaviour:
    def test_sparse_prefers_greedy_like_depth(self):
        # A single far pair: greedy routes directly; rigid ATA would run
        # the whole pattern.
        coupling = grid(4, 4)
        problem = random_problem_graph(16, 0.05, seed=1)
        hybrid = compile_and_check(coupling, problem, method="hybrid")
        ata = compile_and_check(coupling, problem, method="ata",
                                use_range_detection=False)
        assert hybrid.depth() <= ata.depth()

    def test_dense_large_ata_beats_greedy_depth(self):
        # The crossover of Section 5.4: the structured solution wins on
        # dense inputs at scale (here: full clique on 6x6).
        coupling = grid(6, 6)
        problem = clique(36)
        greedy = compile_and_check(coupling, problem, method="greedy")
        ata = compile_and_check(coupling, problem, method="ata")
        assert ata.depth() <= greedy.depth()


class TestOptions:
    def test_noise_aware_compilation(self):
        coupling = grid(4, 4)
        noise = NoiseModel(coupling, seed=3)
        problem = random_problem_graph(12, 0.3, seed=5)
        result = compile_and_check(coupling, problem, method="hybrid",
                                   noise=noise)
        assert 0.0 < result.esp(noise) < 1.0

    def test_degree_placement(self):
        coupling = grid(4, 4)
        problem = random_problem_graph(12, 0.3, seed=5)
        compile_and_check(coupling, problem, method="greedy",
                          placement="degree")

    def test_exact_matching(self):
        coupling = grid(3, 3)
        problem = random_problem_graph(9, 0.4, seed=2)
        compile_and_check(coupling, problem, method="greedy",
                          matching="exact")

    def test_gamma_propagates(self):
        coupling = line(4)
        problem = clique(4)
        result = compile_and_check(coupling, problem, method="hybrid",
                                   gamma=0.9)
        from repro.ir.gates import CPHASE
        gates = [op for op in result.circuit if op.kind == CPHASE]
        assert gates and all(op.param == 0.9 for op in gates)

    def test_oversized_problem_rejected(self):
        with pytest.raises(ValueError):
            compile_qaoa(line(3), clique(5))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            compile_qaoa(line(3), clique(3), method="magic")

    def test_selected_label_recorded(self):
        result = compile_and_check(grid(3, 3),
                                   random_problem_graph(9, 0.4, seed=0))
        assert "selected" in result.extra
        assert result.extra["n_candidates"] >= 2


class TestPredictionSampling:
    def test_max_predictions_one_compiles(self):
        # Regression: used to ZeroDivisionError in _sample whenever more
        # than one snapshot existed (ISSUE 1 satellite).
        coupling = grid(4, 4)
        problem = random_problem_graph(14, 0.35, seed=3)
        result = compile_and_check(coupling, problem, method="hybrid",
                                   max_predictions=1)
        assert result.extra["candidates"]["snapshots_sampled"] == 1

    def test_max_predictions_zero_rejected(self):
        with pytest.raises(ValueError, match="max_predictions"):
            compile_qaoa(grid(3, 3), clique(4), max_predictions=0)

    def test_max_predictions_negative_rejected(self):
        with pytest.raises(ValueError, match="max_predictions"):
            compile_qaoa(grid(3, 3), clique(4), max_predictions=-3)

    def test_sample_keeps_first_snapshot(self):
        from repro.compiler.framework import _sample
        snapshots = list(range(10))
        assert _sample(snapshots, 1) == [0]
        assert _sample(snapshots, 3)[0] == 0
        assert _sample(snapshots, 99) == snapshots


class TestTelemetry:
    def test_hybrid_records_stage_timings(self):
        result = compile_and_check(grid(4, 4),
                                   random_problem_graph(12, 0.3, seed=1))
        timings = result.stage_timings
        for stage in ("placement", "pattern", "greedy", "prediction",
                      "selection"):
            assert stage in timings
            assert timings[stage] >= 0.0

    @pytest.mark.parametrize("method", ["greedy", "ata"])
    def test_other_methods_record_timings(self, method):
        result = compile_and_check(grid(4, 4),
                                   random_problem_graph(12, 0.3, seed=1),
                                   method=method)
        assert "placement" in result.stage_timings

    def test_cache_delta_recorded(self):
        from repro.batch.cache import clear_caches
        clear_caches()
        coupling = grid(4, 4)
        problem = random_problem_graph(12, 0.3, seed=1)
        cold = compile_and_check(coupling, problem)
        assert cold.cache_stats["pattern"]["misses"] == 1
        # A fresh but identical coupling hits both process-local caches.
        warm = compile_and_check(grid(4, 4), problem)
        assert warm.cache_stats["pattern"]["hits"] == 1
        assert warm.cache_stats["distance_matrix"]["hits"] >= 1

    def test_candidate_pool_stats(self):
        result = compile_and_check(grid(4, 4),
                                   random_problem_graph(14, 0.35, seed=2))
        stats = result.extra["candidates"]
        assert stats["count"] == result.extra["n_candidates"]
        assert stats["snapshots_sampled"] <= stats["snapshots_total"]
        assert stats["greedy_cycles"] >= 1
        assert len(result.extra["prediction_times_s"]) <= \
            stats["snapshots_sampled"]

    def test_to_record_is_plain_data(self):
        import json
        result = compile_and_check(grid(3, 3),
                                   random_problem_graph(9, 0.4, seed=0))
        record = result.to_record()
        assert record["depth"] == result.depth()
        json.dumps(record)  # must be JSON-serializable


class TestHamiltonianInputs:
    def test_ising_on_heavyhex(self):
        from repro.problems import nnn_ising_1d
        coupling = heavyhex(3, 10)
        problem = nnn_ising_1d(24)
        compile_and_check(coupling, problem, method="hybrid")
