"""Tests for initial placement strategies."""

import pytest

from repro.arch import NoiseModel, grid, heavyhex, line
from repro.baselines.routing import mapping_cost
from repro.compiler.mapping import (degree_placement, noise_aware_placement,
                                    quadratic_placement, trivial_placement)
from repro.problems import clique, random_problem_graph


@pytest.fixture
def setting():
    coupling = grid(4, 4)
    problem = random_problem_graph(10, 0.4, seed=3)
    return coupling, problem


class TestTrivial:
    def test_identity(self, setting):
        coupling, problem = setting
        m = trivial_placement(coupling, problem)
        assert m.log_to_phys == list(range(10))


class TestDegree:
    def test_bijective(self, setting):
        coupling, problem = setting
        m = degree_placement(coupling, problem)
        assert len(set(m.log_to_phys)) == problem.n_vertices

    def test_highest_degree_vertex_central(self, setting):
        coupling, problem = setting
        m = degree_placement(coupling, problem)
        degrees = problem.degrees()
        busiest = max(range(10), key=lambda v: degrees[v])
        home = m.physical(busiest)
        ecc = coupling.distance_matrix.max(axis=1)
        assert ecc[home] == ecc.min()


class TestQuadratic:
    def test_never_worse_than_degree(self, setting):
        coupling, problem = setting
        base = mapping_cost(coupling, degree_placement(coupling, problem),
                            problem)
        improved = mapping_cost(
            coupling, quadratic_placement(coupling, problem), problem)
        assert improved <= base

    def test_seed_reproducible(self, setting):
        coupling, problem = setting
        a = quadratic_placement(coupling, problem, seed=4)
        b = quadratic_placement(coupling, problem, seed=4)
        assert a.log_to_phys == b.log_to_phys


class TestNoiseAware:
    def test_region_is_connected(self):
        coupling = heavyhex(3, 6)
        problem = random_problem_graph(12, 0.3, seed=1)
        noise = NoiseModel(coupling, seed=7)
        m = noise_aware_placement(coupling, problem, noise)
        used = sorted(m.log_to_phys)
        # Connectivity: BFS within the used set reaches everything.
        used_set = set(used)
        frontier = [used[0]]
        seen = {used[0]}
        while frontier:
            nxt = []
            for q in frontier:
                for n in coupling.neighbors(q):
                    if n in used_set and n not in seen:
                        seen.add(n)
                        nxt.append(n)
            frontier = nxt
        assert seen == used_set

    def test_avoids_worst_qubit(self):
        coupling = line(6)
        problem = clique(3)
        noise = NoiseModel(coupling, seed=1)
        # Poison one end of the line.
        noise.readout_error[5] = 0.9
        noise.cx_error[(4, 5)] = 0.08
        m = noise_aware_placement(coupling, problem, noise)
        assert 5 not in m.log_to_phys

    def test_compile_with_noise_placement(self):
        from repro.compiler import compile_qaoa
        coupling = grid(4, 4)
        problem = random_problem_graph(10, 0.4, seed=3)
        noise = NoiseModel(coupling, seed=2)
        result = compile_qaoa(coupling, problem, placement="noise",
                              noise=noise)
        result.validate(coupling, problem)

    def test_noise_placement_falls_back_without_model(self):
        import pytest

        from repro.compiler import compile_qaoa
        coupling = grid(4, 4)
        problem = random_problem_graph(10, 0.4, seed=3)
        with pytest.warns(UserWarning, match="falling back to quadratic"):
            result = compile_qaoa(coupling, problem, placement="noise")
        result.validate(coupling, problem)
        # The fallback is recorded so sweeps can't mislabel the run.
        assert result.extra["placement_fallback"]["requested"] == "noise"
