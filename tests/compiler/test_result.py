"""Tests for the CompiledResult container."""

import pytest

from repro.arch import NoiseModel, line
from repro.compiler import CompiledResult, compile_qaoa
from repro.exceptions import ValidationError
from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.problems import clique


@pytest.fixture
def result():
    coupling = line(5)
    return compile_qaoa(coupling, clique(5), method="hybrid"), coupling


class TestMetrics:
    def test_depth_positive(self, result):
        compiled, _ = result
        assert compiled.depth() > 0

    def test_gate_count_uses_fusion(self, result):
        compiled, _ = result
        assert compiled.gate_count == compiled.cx_count(unify=True)
        assert compiled.gate_count <= compiled.cx_count(unify=False)

    def test_swap_count(self, result):
        compiled, _ = result
        assert compiled.swap_count == compiled.circuit.swap_count

    def test_esp(self, result):
        compiled, coupling = result
        noise = NoiseModel(coupling)
        assert 0 < compiled.esp(noise) < 1

    def test_summary_mentions_method(self, result):
        compiled, _ = result
        text = compiled.summary()
        assert "hybrid" in text
        assert "depth=" in text


class TestValidation:
    def test_validate_passes(self, result):
        compiled, coupling = result
        report = compiled.validate(coupling, clique(5))
        assert report.n_edges == 10

    def test_validate_catches_forged_result(self):
        coupling = line(3)
        # A circuit that claims to implement clique(3) but misses an edge.
        bogus = CompiledResult(
            circuit=Circuit(3, [Op.cphase(0, 1)]),
            initial_mapping=Mapping.trivial(3),
            method="bogus")
        with pytest.raises(ValidationError):
            bogus.validate(coupling, clique(3))

    def test_wall_time_recorded(self, result):
        compiled, _ = result
        assert compiled.wall_time_s > 0
