"""Tests for the NNN Hamiltonian interaction graphs (Table 3 inputs)."""

from repro.problems import (hamiltonian_benchmarks, nnn_heisenberg_3d,
                            nnn_ising_1d, nnn_xy_2d)


class TestIsing1D:
    def test_size_and_edges(self):
        g = nnn_ising_1d(64)
        assert g.n_vertices == 64
        assert g.n_edges == 63 + 62

    def test_small_instance_edges(self):
        g = nnn_ising_1d(4)
        assert g.edges == frozenset({(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)})

    def test_max_degree_four(self):
        g = nnn_ising_1d(10)
        assert max(g.degrees().values()) == 4


class TestXY2D:
    def test_size(self):
        g = nnn_xy_2d(8)
        assert g.n_vertices == 64

    def test_edge_count(self):
        side = 8
        nearest = 2 * side * (side - 1)
        diagonal = 2 * (side - 1) * (side - 1)
        assert nnn_xy_2d(side).n_edges == nearest + diagonal

    def test_interior_degree_eight(self):
        g = nnn_xy_2d(4)
        # node (1,1) = 5 has 4 nearest + 4 diagonal neighbours.
        assert g.degrees()[5] == 8


class TestHeisenberg3D:
    def test_size(self):
        g = nnn_heisenberg_3d(4)
        assert g.n_vertices == 64

    def test_edge_count(self):
        side = 4
        axes = 3 * side * side * (side - 1)
        diagonals = 6 * side * (side - 1) * (side - 1)
        assert nnn_heisenberg_3d(side).n_edges == axes + diagonals

    def test_corner_degree(self):
        g = nnn_heisenberg_3d(3)
        # corner (0,0,0): 3 axis + 3 face-diagonal neighbours.
        assert g.degrees()[0] == 6


def test_benchmark_suite_sizes():
    suite = hamiltonian_benchmarks()
    assert [g.n_vertices for g in suite] == [64, 64, 64]
    names = [g.name for g in suite]
    assert any("ising" in n for n in names)
    assert any("xy" in n for n in names)
    assert any("heisenberg" in n for n in names)
