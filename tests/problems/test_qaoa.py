"""Tests for the QAOA problem object and cost functions."""

import numpy as np
import pytest

from repro.ir.gates import CPHASE, H, RX
from repro.problems import ProblemGraph, QaoaProblem


@pytest.fixture
def triangle():
    return QaoaProblem(ProblemGraph(3, [(0, 1), (1, 2), (0, 2)]))


class TestLogicalCircuit:
    def test_single_layer_structure(self, triangle):
        c = triangle.logical_circuit([0.5], [0.3])
        kinds = [op.kind for op in c]
        assert kinds.count(H) == 3
        assert kinds.count(CPHASE) == 3
        assert kinds.count(RX) == 3

    def test_two_layers_double_gates(self, triangle):
        c = triangle.logical_circuit([0.5, 0.1], [0.3, 0.2])
        assert sum(1 for op in c if op.kind == CPHASE) == 6

    def test_angle_propagation(self, triangle):
        c = triangle.logical_circuit([0.5], [0.3])
        cphases = [op for op in c if op.kind == CPHASE]
        assert all(op.param == 0.5 for op in cphases)
        rxs = [op for op in c if op.kind == RX]
        assert all(op.param == pytest.approx(0.6) for op in rxs)

    def test_mismatched_params_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.logical_circuit([0.5], [0.3, 0.1])


class TestCutValues:
    def test_cut_value_of_assignment(self, triangle):
        assert triangle.cut_value([0, 1, 0]) == 2
        assert triangle.cut_value([0, 0, 0]) == 0

    def test_triangle_max_cut_is_two(self, triangle):
        assert triangle.max_cut_brute_force() == 2

    def test_cut_values_all_agrees_with_cut_value(self, triangle):
        values = triangle.cut_values_all()
        for index in range(8):
            bits = [(index >> (2 - q)) & 1 for q in range(3)]
            assert values[index] == triangle.cut_value(bits)

    def test_expected_cut_uniform(self, triangle):
        probs = np.full(8, 1 / 8)
        # Each edge is cut with probability 1/2 under uniform bits.
        assert triangle.expected_cut(probs) == pytest.approx(1.5)

    def test_expected_cut_point_mass(self, triangle):
        probs = np.zeros(8)
        probs[0b010] = 1.0  # bits 0,1,0
        assert triangle.expected_cut(probs) == pytest.approx(2.0)

    def test_brute_force_guard(self):
        big = QaoaProblem(ProblemGraph(25, [(0, 1)]))
        with pytest.raises(ValueError):
            big.max_cut_brute_force()


def test_path_graph_maxcut():
    p = QaoaProblem(ProblemGraph(4, [(0, 1), (1, 2), (2, 3)]))
    assert p.max_cut_brute_force() == 3
