"""Tests for the named benchmark suites."""

from repro.problems.suite import (all_suites_summary, random_suite,
                                  regular_suite, table4_instances)


class TestSuites:
    def test_random_suite_shape(self):
        instances = list(random_suite(sizes=(16,), densities=(0.3, 0.5),
                                      n_cases=2))
        assert len(instances) == 4
        assert all(g.n_vertices == 16 for g in instances)

    def test_random_suite_reproducible(self):
        a = [g.edges for g in random_suite(sizes=(16,), n_cases=1)]
        b = [g.edges for g in random_suite(sizes=(16,), n_cases=1)]
        assert a == b

    def test_regular_suite_is_regular(self):
        for g in regular_suite(sizes=(16,), densities=(0.3,), n_cases=1):
            assert len(set(g.degrees().values())) == 1

    def test_table4_names(self):
        names = [name for name, _ in table4_instances()]
        assert names == ["10-2", "10-3", "10-4", "12-2", "12-3", "12-4",
                         "15-2", "15-4"]

    def test_table4_sizes(self):
        for name, graph in table4_instances():
            n = int(name.split("-")[0])
            assert graph.n_vertices == n

    def test_summary(self):
        summary = dict(all_suites_summary())
        assert summary["hamiltonian"] == 3
        assert summary["table4"] == 8
