"""Tests for problem-graph generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import (ProblemGraph, clique, random_problem_graph,
                            regular_for_density, regular_problem_graph)


class TestProblemGraph:
    def test_basic_properties(self):
        g = ProblemGraph(4, [(0, 1), (2, 3), (1, 0)])
        assert g.n_edges == 2
        assert g.density() == pytest.approx(2 / 6)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            ProblemGraph(3, [(0, 3)])
        with pytest.raises(ValueError):
            ProblemGraph(3, [(1, 1)])

    def test_degrees(self):
        g = ProblemGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees() == {0: 3, 1: 1, 2: 1, 3: 1}

    def test_neighbors(self):
        g = ProblemGraph(4, [(0, 1), (0, 2)])
        assert g.neighbors(0) == [1, 2]
        assert g.neighbors(3) == []

    def test_connected_components(self):
        g = ProblemGraph(6, [(0, 1), (1, 2), (4, 5)])
        comps = sorted(g.connected_components(), key=min)
        assert comps == [frozenset({0, 1, 2}), frozenset({4, 5})]

    def test_isolated_vertices_excluded_from_components(self):
        g = ProblemGraph(5, [(0, 1)])
        assert g.connected_components() == [frozenset({0, 1})]


class TestClique:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_clique_edge_count(self, n):
        assert clique(n).n_edges == n * (n - 1) // 2

    def test_clique_density_is_one(self):
        assert clique(6).density() == pytest.approx(1.0)


class TestRandomGraphs:
    def test_density_matches_target(self):
        g = random_problem_graph(64, 0.3, seed=1)
        assert g.density() == pytest.approx(0.3, abs=0.01)

    def test_seed_reproducibility(self):
        a = random_problem_graph(30, 0.4, seed=9)
        b = random_problem_graph(30, 0.4, seed=9)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = random_problem_graph(30, 0.4, seed=1)
        b = random_problem_graph(30, 0.4, seed=2)
        assert a.edges != b.edges

    def test_density_bounds_validated(self):
        with pytest.raises(ValueError):
            random_problem_graph(10, 1.5)


class TestRegularGraphs:
    def test_all_degrees_equal(self):
        g = regular_problem_graph(20, 4, seed=3)
        assert set(g.degrees().values()) == {4}

    def test_odd_product_bumped(self):
        # 5 * 15 is odd; generator bumps the degree to keep it feasible.
        g = regular_problem_graph(15, 5, seed=3)
        assert set(g.degrees().values()) == {6}

    def test_regular_for_density(self):
        g = regular_for_density(64, 0.3, seed=0)
        assert g.density() == pytest.approx(0.3, abs=0.02)


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 40), st.floats(0.05, 0.9))
def test_random_graph_density_property(n, density):
    g = random_problem_graph(n, density, seed=0)
    max_edges = n * (n - 1) // 2
    assert abs(g.n_edges - density * max_edges) <= 0.5 + 1e-9
