"""Weighted problem graphs and weighted MaxCut semantics."""

import math

import numpy as np
import pytest

from repro.problems import (ProblemGraph, random_problem_graph,
                            weighted_random_problem_graph)
from repro.problems.qaoa import QaoaProblem


def _weighted_triangle():
    return ProblemGraph(3, [(0, 1), (1, 2), (0, 2)], name="tri",
                        weights={(0, 1): 2.0, (1, 2): 0.5, (0, 2): 1.5})


class TestWeightedGraph:
    def test_unweighted_by_default(self):
        graph = ProblemGraph(3, [(0, 1), (1, 2)])
        assert not graph.is_weighted
        assert graph.weight(0, 1) == 1.0
        assert graph.weight(2, 1) == 1.0

    def test_weights_canonicalized(self):
        graph = ProblemGraph(2, [(0, 1)], weights={(1, 0): 3.0})
        assert graph.is_weighted
        assert graph.weight(0, 1) == 3.0
        assert graph.weight(1, 0) == 3.0

    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError):
            ProblemGraph(3, [(0, 1), (1, 2)], weights={(0, 1): 2.0})

    def test_stray_weight_rejected(self):
        with pytest.raises(ValueError):
            ProblemGraph(3, [(0, 1)], weights={(0, 1): 1.0, (1, 2): 2.0})

    def test_weight_of_non_edge_raises(self):
        graph = _weighted_triangle()
        with pytest.raises(KeyError):
            graph.weight(0, 0)

    def test_repr_tags_weighted(self):
        assert "weighted" in repr(_weighted_triangle())
        assert "weighted" not in repr(ProblemGraph(2, [(0, 1)]))


class TestWeightedRandom:
    def test_topology_matches_unweighted_twin(self):
        base = random_problem_graph(10, 0.3, seed=4)
        weighted = weighted_random_problem_graph(10, 0.3, seed=4)
        assert sorted(weighted.edges) == sorted(base.edges)
        assert weighted.is_weighted

    def test_deterministic_per_seed(self):
        a = weighted_random_problem_graph(8, 0.4, seed=1)
        b = weighted_random_problem_graph(8, 0.4, seed=1)
        c = weighted_random_problem_graph(8, 0.4, seed=2)

        def table(graph):
            return {edge: graph.weight(*edge) for edge in graph.edges}

        assert table(a) == table(b)
        assert table(a) != table(c)

    def test_weights_in_range(self):
        graph = weighted_random_problem_graph(12, 0.3, seed=0,
                                              low=0.25, high=0.75)
        assert all(0.25 <= graph.weight(u, v) <= 0.75
                   for u, v in graph.edges)


class TestWeightedMaxCut:
    def test_cut_value_weighs_edges(self):
        problem = QaoaProblem(_weighted_triangle())
        # Vertex 0 alone on its side cuts edges (0,1) and (0,2).
        value = problem.cut_value([1, 0, 0])
        assert value == pytest.approx(2.0 + 1.5)

    def test_cut_values_all_dtype(self):
        weighted = QaoaProblem(_weighted_triangle())
        unweighted = QaoaProblem(ProblemGraph(3, [(0, 1), (1, 2), (0, 2)]))
        assert weighted.cut_values_all().dtype == np.float64
        assert unweighted.cut_values_all().dtype == np.int64

    def test_brute_force_types(self):
        weighted = QaoaProblem(_weighted_triangle())
        unweighted = QaoaProblem(ProblemGraph(3, [(0, 1), (1, 2), (0, 2)]))
        assert isinstance(weighted.max_cut_brute_force(), float)
        assert isinstance(unweighted.max_cut_brute_force(), int)
        assert weighted.max_cut_brute_force() == pytest.approx(3.5)
        assert unweighted.max_cut_brute_force() == 2

    def test_logical_circuit_scales_angles(self):
        problem = QaoaProblem(_weighted_triangle())
        circuit = problem.logical_circuit([0.4], [0.3])
        angles = {tuple(sorted(op.qubits)): op.param
                  for op in circuit.ops if op.kind == "cphase"}
        assert angles[(0, 1)] == pytest.approx(0.8)
        assert angles[(1, 2)] == pytest.approx(0.2)
        assert angles[(0, 2)] == pytest.approx(0.6)

    def test_unweighted_angles_unchanged(self):
        problem = QaoaProblem(ProblemGraph(3, [(0, 1), (1, 2)]))
        circuit = problem.logical_circuit([0.4], [0.3])
        angles = [op.param for op in circuit.ops if op.kind == "cphase"]
        assert all(math.isclose(a, 0.4) for a in angles)
