"""Metric-space properties of coupling-graph distances, per architecture."""

import numpy as np
import pytest

from repro.arch import cube, grid, heavyhex, hexagon, line, mumbai, sycamore

ARCHES = [line(9), grid(3, 4), sycamore(3, 4), hexagon(4, 3),
          heavyhex(2, 6), mumbai(), cube(2, 2, 3)]


@pytest.mark.parametrize("coupling", ARCHES, ids=lambda a: a.name)
class TestMetricProperties:
    def test_symmetry(self, coupling):
        m = coupling.distance_matrix
        assert (m == m.T).all()

    def test_identity(self, coupling):
        m = coupling.distance_matrix
        assert (np.diag(m) == 0).all()

    def test_edges_have_distance_one(self, coupling):
        for u, v in coupling.edges:
            assert coupling.distance(u, v) == 1

    def test_triangle_inequality(self, coupling):
        m = coupling.distance_matrix.astype(np.int64)
        n = coupling.n_qubits
        for k in range(n):
            # d(i,j) <= d(i,k) + d(k,j) for all i,j — vectorised.
            via_k = m[:, k][:, None] + m[k, :][None, :]
            assert (m <= via_k).all()

    def test_positive_off_diagonal(self, coupling):
        m = coupling.distance_matrix
        off = m[~np.eye(coupling.n_qubits, dtype=bool)]
        assert (off >= 1).all()

    def test_shortest_path_length_matches_distance(self, coupling):
        rng = np.random.default_rng(1)
        n = coupling.n_qubits
        for _ in range(10):
            u, v = rng.integers(0, n, size=2)
            path = coupling.shortest_path(int(u), int(v))
            assert len(path) - 1 == coupling.distance(int(u), int(v))
