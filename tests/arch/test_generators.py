"""Structural tests for every architecture generator."""

import pytest

from repro.arch import (architecture_for, grid, heavyhex, heavyhex_for,
                        hexagon, hexagon_pair_path, line, mumbai, sycamore,
                        sycamore_pair_path)
from repro.arch.heavyhex import _total_qubits


class TestLine:
    def test_line_shape(self):
        g = line(5)
        assert g.n_qubits == 5
        assert g.n_edges == 4
        assert g.metadata["path"] == [0, 1, 2, 3, 4]

    def test_line_degrees(self):
        g = line(6)
        assert g.degree(0) == 1
        assert g.degree(3) == 2


class TestGrid:
    def test_grid_edge_count(self):
        g = grid(3, 4)
        assert g.n_qubits == 12
        assert g.n_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_units_are_rows(self):
        g = grid(3, 4)
        assert g.metadata["units"][1] == [4, 5, 6, 7]

    def test_snake_path_is_hamiltonian(self):
        g = grid(4, 5)
        path = g.metadata["path"]
        assert sorted(path) == list(range(20))
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    def test_unit_rows_are_chains(self):
        g = grid(3, 4)
        for unit in g.metadata["units"]:
            for a, b in zip(unit, unit[1:]):
                assert g.has_edge(a, b)

    def test_architecture_for_minimality(self):
        g = architecture_for("grid", 10)
        assert g.n_qubits >= 10
        assert g.n_qubits <= 12  # 3x4 fits, 4x4 would be wasteful


class TestSycamore:
    def test_interior_degree_is_four(self):
        g = sycamore(5, 5)
        interior = 2 * 5 + 2  # row 2, col 2 -> node 12
        assert g.degree(interior) == 4

    def test_rows_have_no_internal_edges(self):
        g = sycamore(3, 4)
        for unit in g.metadata["units"]:
            for a in unit:
                for b in unit:
                    if a != b:
                        assert not g.has_edge(a, b)

    @pytest.mark.parametrize("r", [0, 1, 2])
    def test_pair_path_valid(self, r):
        g = sycamore(4, 5)
        path = sycamore_pair_path(r, 5)
        expected = set(g.metadata["units"][r]) | set(g.metadata["units"][r + 1])
        assert set(path) == expected
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b), (a, b)

    def test_pair_path_alternates_rows(self):
        path = sycamore_pair_path(0, 4)
        rows = [q // 4 for q in path]
        assert rows == [1, 0] * 4

    def test_connected(self):
        assert sycamore(4, 4).is_connected()


class TestHexagon:
    def test_requires_even_rows(self):
        with pytest.raises(ValueError):
            hexagon(3, 3)

    def test_degree_at_most_three(self):
        g = hexagon(6, 5)
        assert g.max_degree() <= 3

    def test_units_are_column_chains(self):
        g = hexagon(4, 3)
        for unit in g.metadata["units"]:
            for a, b in zip(unit, unit[1:]):
                assert g.has_edge(a, b)

    @pytest.mark.parametrize("c", [0, 1, 2])
    def test_pair_path_valid(self, c):
        rows = 4
        g = hexagon(rows, 4)
        path = hexagon_pair_path(c, rows)
        expected = set(g.metadata["units"][c]) | set(g.metadata["units"][c + 1])
        assert set(path) == expected
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b), (a, b)

    def test_connected(self):
        assert hexagon(4, 5).is_connected()


class TestHeavyHex:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            heavyhex(3, width=8)

    def test_degree_at_most_three(self):
        g = heavyhex(5, 10)
        assert g.max_degree() <= 3

    def test_total_qubits_helper(self):
        g = heavyhex(4, 10)
        assert g.n_qubits == _total_qubits(4, 10)

    def test_longest_path_is_simple_and_valid(self):
        g = heavyhex(5, 10)
        path = g.metadata["path"]
        assert len(path) == len(set(path))
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b), (a, b)

    def test_path_covers_all_row_qubits(self):
        rows, width = 4, 10
        g = heavyhex(rows, width)
        on_path = set(g.metadata["path"])
        for q in range(rows * width):
            assert q in on_path

    def test_off_path_nodes_attach_to_path(self):
        g = heavyhex(5, 10)
        on_path = set(g.metadata["path"])
        off_path = g.metadata["off_path"]
        assert set(off_path).isdisjoint(on_path)
        assert set(off_path) | on_path == set(range(g.n_qubits))
        for node, anchors in off_path.items():
            assert anchors, f"off-path node {node} has no path anchor"
            for anchor in anchors:
                assert anchor in on_path
                assert g.has_edge(node, anchor)

    def test_each_path_node_has_at_most_one_off_path_neighbor(self):
        g = heavyhex(6, 10)
        off_path = set(g.metadata["off_path"])
        for q in g.metadata["path"]:
            off_neighbors = [p for p in g.neighbors(q) if p in off_path]
            assert len(off_neighbors) <= 1

    def test_heavyhex_for_scales(self):
        for n in (16, 64, 256):
            g = heavyhex_for(n)
            assert g.n_qubits >= n
            assert g.is_connected()

    def test_single_row(self):
        g = heavyhex(1, 6)
        assert g.n_qubits == 6
        assert g.metadata["path"] == [0, 1, 2, 3, 4, 5]


class TestMumbai:
    def test_size(self):
        g = mumbai()
        assert g.n_qubits == 27
        assert g.n_edges == 28

    def test_path_valid(self):
        g = mumbai()
        path = g.metadata["path"]
        assert len(path) == len(set(path)) == 21
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b), (a, b)

    def test_off_path_anchored(self):
        g = mumbai()
        for node, anchors in g.metadata["off_path"].items():
            assert anchors
            for anchor in anchors:
                assert g.has_edge(node, anchor)

    def test_heavyhex_degree_bound(self):
        assert mumbai().max_degree() <= 3


class TestRegistry:
    @pytest.mark.parametrize("kind", ["line", "grid", "sycamore",
                                      "hexagon", "heavyhex"])
    def test_architecture_for_fits(self, kind):
        g = architecture_for(kind, 30)
        assert g.n_qubits >= 30
        assert g.is_connected()
        assert g.kind == kind

    def test_unknown_kind(self):
        from repro.exceptions import ArchitectureError
        with pytest.raises(ArchitectureError):
            architecture_for("torus", 10)

    def test_mumbai_capacity_check(self):
        from repro.exceptions import ArchitectureError
        with pytest.raises(ArchitectureError):
            architecture_for("mumbai", 30)
