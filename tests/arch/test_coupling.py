"""Tests for CouplingGraph basics."""

import pytest

from repro.arch.coupling import CouplingGraph
from repro.exceptions import ArchitectureError


@pytest.fixture
def square():
    return CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="sq")


class TestTopology:
    def test_edges_canonicalised(self, square):
        assert (0, 3) in square.edges
        assert square.has_edge(3, 0)
        assert square.n_edges == 4

    def test_duplicate_edges_collapse(self):
        g = CouplingGraph(2, [(0, 1), (1, 0)])
        assert g.n_edges == 1

    def test_neighbors_sorted(self, square):
        assert square.neighbors(0) == (1, 3)

    def test_degree(self, square):
        assert square.degree(1) == 2
        assert square.max_degree() == 2

    def test_rejects_self_loop(self):
        with pytest.raises(ArchitectureError):
            CouplingGraph(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ArchitectureError):
            CouplingGraph(2, [(0, 2)])

    def test_rejects_empty(self):
        with pytest.raises(ArchitectureError):
            CouplingGraph(0, [])


class TestDistances:
    def test_distance_on_cycle(self, square):
        assert square.distance(0, 2) == 2
        assert square.distance(0, 3) == 1
        assert square.distance(1, 1) == 0

    def test_disconnected_distance_raises(self):
        g = CouplingGraph(3, [(0, 1)])
        with pytest.raises(ArchitectureError):
            g.distance(0, 2)

    def test_is_connected(self, square):
        assert square.is_connected()
        assert not CouplingGraph(3, [(0, 1)]).is_connected()

    def test_shortest_path_endpoints(self, square):
        path = square.shortest_path(0, 2)
        assert path[0] == 0 and path[-1] == 2
        assert len(path) == 3
        for a, b in zip(path, path[1:]):
            assert square.has_edge(a, b)

    def test_shortest_path_trivial(self, square):
        assert square.shortest_path(1, 1) == [1]

    def test_distance_matrix_symmetry(self, square):
        m = square.distance_matrix
        assert (m == m.T).all()


def test_to_networkx_roundtrip(square):
    g = square.to_networkx()
    assert g.number_of_nodes() == 4
    assert g.number_of_edges() == 4


class TestDistanceMatrixCache:
    def test_identical_graphs_share_one_matrix(self):
        from repro.arch import grid
        from repro.arch.coupling import (clear_distance_cache,
                                         distance_cache_info)
        clear_distance_cache()
        first = grid(3, 3).distance_matrix
        second = grid(3, 3).distance_matrix
        assert second is first  # memoized process-wide, not recomputed
        info = distance_cache_info()
        assert info == {"hits": 1, "misses": 1, "size": 1}

    def test_different_structures_get_distinct_entries(self):
        from repro.arch import grid, line
        from repro.arch.coupling import (clear_distance_cache,
                                         distance_cache_info)
        clear_distance_cache()
        grid(3, 3).distance_matrix
        line(9).distance_matrix
        assert distance_cache_info()["misses"] == 2

    def test_cached_matrix_is_read_only(self):
        from repro.arch import grid
        import pytest
        matrix = grid(3, 3).distance_matrix
        with pytest.raises(ValueError):
            matrix[0, 1] = 99

    def test_instance_caches_after_first_lookup(self):
        from repro.arch import grid
        from repro.arch.coupling import (clear_distance_cache,
                                         distance_cache_info)
        clear_distance_cache()
        coupling = grid(3, 3)
        coupling.distance_matrix
        coupling.distance_matrix  # second access stays instance-local
        assert distance_cache_info() == {"hits": 0, "misses": 1, "size": 1}
