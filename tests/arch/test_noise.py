"""Tests for the synthetic noise calibration."""


import pytest

from repro.arch import NoiseModel, grid, line, uniform_noise_model
from repro.ir.circuit import Circuit
from repro.ir.gates import Op


@pytest.fixture
def model():
    return NoiseModel(grid(3, 3), seed=11)


class TestCalibration:
    def test_every_edge_has_error(self, model):
        assert set(model.cx_error) == set(model.coupling.edges)

    def test_error_ranges(self, model):
        for e in model.cx_error.values():
            assert 1e-3 <= e <= 8e-2
        for r in model.readout_error.values():
            assert 5e-3 <= r <= 1.2e-1

    def test_variability_exists(self, model):
        values = list(model.cx_error.values())
        assert max(values) > min(values)

    def test_seed_reproducibility(self):
        a = NoiseModel(grid(3, 3), seed=5)
        b = NoiseModel(grid(3, 3), seed=5)
        assert a.cx_error == b.cx_error

    def test_edge_error_symmetric_lookup(self, model):
        assert model.edge_error(0, 1) == model.edge_error(1, 0)

    def test_uniform_model(self):
        m = uniform_noise_model(line(4), cx_error=0.01)
        assert set(m.cx_error.values()) == {0.01}


class TestCrosstalk:
    def test_crosstalk_pairs_disjoint_edges(self, model):
        for e1, e2 in model.crosstalk_pairs:
            assert not set(e1) & set(e2)

    def test_known_crosstalk_on_grid(self, model):
        # (0,1) and (3,4) are parallel nearest-neighbour rows on a 3x3 grid.
        assert model.in_crosstalk((0, 1), (3, 4))

    def test_far_edges_no_crosstalk(self, model):
        assert not model.in_crosstalk((0, 1), (7, 8))


class TestEsp:
    def test_empty_circuit_esp_is_one(self, model):
        assert model.esp(Circuit(9)) == pytest.approx(1.0)

    def test_esp_decreases_with_gates(self, model):
        c1 = Circuit(9, [Op.cphase(0, 1)])
        c2 = Circuit(9, [Op.cphase(0, 1), Op.swap(1, 2)])
        assert model.esp(c2) < model.esp(c1) < 1.0

    def test_esp_matches_manual_product(self):
        m = uniform_noise_model(line(3), cx_error=0.01)
        c = Circuit(3, [Op.cphase(0, 1), Op.swap(1, 2)])
        # 2 CX + 3 CX at error 0.01 each.
        assert m.esp(c) == pytest.approx((1 - 0.01) ** 5)

    def test_fused_pair_costs_three_cx(self):
        m = uniform_noise_model(line(2), cx_error=0.01)
        c = Circuit(2, [Op.cphase(0, 1), Op.swap(0, 1)])
        assert m.esp(c) == pytest.approx((1 - 0.01) ** 3)

    def test_cx_per_edge_accounting(self, model):
        c = Circuit(9, [Op.cphase(0, 1), Op.swap(0, 1), Op.swap(1, 2)])
        counts = model.cx_per_edge(c)
        assert counts[(0, 1)] == 3  # fused
        assert counts[(1, 2)] == 3

    def test_single_qubit_gates_count(self):
        m = uniform_noise_model(line(2), cx_error=0.01)
        c = Circuit(2, [Op.h(0)])
        assert m.esp(c) == pytest.approx(1 - m.sq_error)

    def test_readout_included_when_asked(self, model):
        c = Circuit(9, [Op.cphase(0, 1)])
        assert model.esp(c, include_readout=True) < model.esp(c)
