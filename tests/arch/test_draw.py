"""Tests for the architecture ASCII renderer."""

from repro.arch import grid, heavyhex, hexagon, line, mumbai, sycamore
from repro.arch.draw import draw_architecture


class TestDrawArchitecture:
    def test_line_contains_all_qubits(self):
        art = draw_architecture(line(5))
        for q in range(5):
            assert str(q) in art

    def test_grid_has_row_per_unit(self):
        g = grid(3, 4)
        art = draw_architecture(g)
        node_lines = [l for l in art.splitlines() if "—" in l]
        assert len(node_lines) == 3

    def test_sycamore_renders(self):
        art = draw_architecture(sycamore(3, 3))
        assert "0" in art and "8" in art

    def test_hexagon_alternating_links(self):
        art = draw_architecture(hexagon(4, 3))
        assert "—" in art
        assert "|" in art

    def test_heavyhex_shows_bridges(self):
        g = heavyhex(2, 6)
        art = draw_architecture(g)
        bridge = str(g.n_qubits - 1)
        assert bridge in art

    def test_mumbai_has_no_grid_layout(self):
        art = draw_architecture(mumbai())
        assert "irregular" in art

    def test_unknown_kind(self):
        from repro.arch.coupling import CouplingGraph
        g = CouplingGraph(2, [(0, 1)], kind="exotic")
        assert "no layout renderer" in draw_architecture(g)
