#!/usr/bin/env python
"""AST lint: no unordered-iteration in compiler hot paths.

Compilation must be reproducible: the same instance and seed must yield
the same circuit on every run and every machine.  Iterating a ``set`` /
``frozenset`` (or ``dict.keys()`` pulled out explicitly, usually a tell
that the author was thinking in sets) makes gate and SWAP choice depend
on hash-iteration order, which is not a stable contract.  This script
walks the compiler hot paths (``compiler/``, ``ata/``, ``pipeline/``,
``solver/`` by default) and flags:

* ``for x in set(...)`` / ``frozenset(...)`` / a set literal or set
  comprehension, in statements and comprehensions;
* iteration over a local name that was assigned one of those;
* ``for k in d.keys()`` — iterate the dict (insertion-ordered) or sort.

Wrapping the iterable in ``sorted(...)`` (or ``min``/``max``/``sum``,
which are order-insensitive) silences the finding, as does a trailing
``# det: ok`` comment on the offending line for sites where unordered
iteration is provably harmless (e.g. building another set).

Exit code 0 when clean, 1 with findings (one ``path:line: message`` per
finding), 2 on usage errors.  Run from the repository root::

    python scripts/check_determinism.py
    python scripts/check_determinism.py src/repro/compiler src/repro/ata
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Set, Tuple

#: Directories scanned when none are given (relative to the repo root).
DEFAULT_HOT_PATHS = ("src/repro/compiler", "src/repro/ata",
                     "src/repro/pipeline", "src/repro/solver",
                     "src/repro/resilience", "src/repro/bench",
                     "src/repro/ir")

#: Calls whose result iterates in hash order.
SET_CONSTRUCTORS = {"set", "frozenset"}

#: Magic comment that vets one line.
SUPPRESSION = "# det: ok"


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Does ``node`` evaluate to a set (literally or via a known name)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in SET_CONSTRUCTORS):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra (a | b, required - done, ...) stays a set
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _is_keys_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args and not node.keywords)


class DeterminismVisitor(ast.NodeVisitor):
    """Collect unordered-iteration findings for one module."""

    def __init__(self) -> None:
        self.findings: List[Tuple[int, str]] = []
        #: Names assigned a set-valued expression, per enclosing scope.
        self._scopes: List[Set[str]] = [set()]

    # -- scope tracking -----------------------------------------------------

    def _enter_scope(self) -> None:
        self._scopes.append(set())

    def _exit_scope(self) -> None:
        self._scopes.pop()

    @property
    def _set_names(self) -> Set[str]:
        names: Set[str] = set()
        for scope in self._scopes:
            names |= scope
        return names

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self._set_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (node.value is not None and isinstance(node.target, ast.Name)
                and _is_set_expr(node.value, self._set_names)):
            self._scopes[-1].add(node.target.id)
        self.generic_visit(node)

    # -- iteration sites ----------------------------------------------------

    def _check_iter(self, iter_node: ast.AST, line: int) -> None:
        if _is_set_expr(iter_node, self._set_names):
            self.findings.append((
                line,
                "iteration over a set is hash-ordered; wrap it in "
                "sorted(...) to keep compilations deterministic"))
        elif _is_keys_call(iter_node):
            self.findings.append((
                line,
                "iterate the dict directly (insertion-ordered) or wrap "
                ".keys() in sorted(...)"))

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node.iter.lineno)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._check_iter(comp.iter, comp.iter.lineno)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a *set* from a set is order-insensitive by definition.
        self.generic_visit(node)


def check_source(source: str, path: str) -> List[str]:
    """Lint one module's source; returns ``path:line: message`` strings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    visitor = DeterminismVisitor()
    visitor.visit(tree)
    lines = source.splitlines()
    out = []
    for line, message in sorted(visitor.findings):
        text = lines[line - 1] if 0 < line <= len(lines) else ""
        if SUPPRESSION in text:
            continue
        out.append(f"{path}:{line}: {message}")
    return out


def check_paths(paths: Iterable[Path]) -> List[str]:
    findings: List[str] = []
    for base in paths:
        files: Iterator[Path]
        if base.is_file():
            files = iter([base])
        elif base.is_dir():
            files = iter(sorted(base.rglob("*.py")))
        else:
            raise FileNotFoundError(f"no such file or directory: {base}")
        for file in files:
            findings.extend(
                check_source(file.read_text(encoding="utf-8"), str(file)))
    return findings


def main(argv: List[str]) -> int:
    roots = [Path(arg) for arg in argv] or \
        [Path(p) for p in DEFAULT_HOT_PATHS]
    try:
        findings = check_paths(roots)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} nondeterministic-iteration finding(s); "
              f"wrap in sorted(...) or vet with '{SUPPRESSION}'",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
