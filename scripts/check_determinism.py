#!/usr/bin/env python
"""Back-compat shim over the CK001 checker rule.

The AST determinism checker that used to live here is now rule
**CK001** of the :mod:`repro.checkers` static-analysis catalogue (run
the full catalogue with ``python -m repro check``).  This script keeps
the historic CLI contract byte-for-byte — same default hot paths, same
messages, same ``# det: ok`` vetting, same 0/1/2 exit codes — so
existing automation and muscle memory stay valid::

    python scripts/check_determinism.py
    python scripts/check_determinism.py src/repro/compiler src/repro/ata
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterable, List

try:
    import repro.checkers as _checkers
except ImportError:  # running without PYTHONPATH=src: use the repo tree
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    import repro.checkers as _checkers

#: Directories scanned when none are given (relative to the repo root).
DEFAULT_HOT_PATHS = ("src/repro/compiler", "src/repro/ata",
                     "src/repro/pipeline", "src/repro/solver",
                     "src/repro/resilience", "src/repro/bench",
                     "src/repro/ir")

#: Calls whose result iterates in hash order.
SET_CONSTRUCTORS = set(_checkers.determinism.SET_CONSTRUCTORS)

#: Magic comment that vets one line.
SUPPRESSION = _checkers.LEGACY_DET_COMMENT

#: CK001 plus CK000, so unparseable files surface as findings (the
#: historic behaviour) instead of vanishing.
_SELECT = ("CK001",)


def _format(diagnostics) -> List[str]:
    return [f"{d.path}:{d.line}: {d.message}" for d in diagnostics]


def check_source(source: str, path: str) -> List[str]:
    """Lint one module's source; returns ``path:line: message`` strings."""
    rules = _checkers.resolve_checkers(select=_SELECT)
    return _format(_checkers.check_source(source, path, rules,
                                          restrict=False))


def check_paths(paths: Iterable[Path]) -> List[str]:
    return _format(_checkers.check_paths(paths, select=_SELECT,
                                         restrict=False))


def main(argv: List[str]) -> int:
    roots = [Path(arg) for arg in argv] or \
        [Path(p) for p in DEFAULT_HOT_PATHS]
    try:
        findings = check_paths(roots)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} nondeterministic-iteration finding(s); "
              f"wrap in sorted(...) or vet with '{SUPPRESSION}'",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
