#!/usr/bin/env python
"""Benchmark the depth-optimal solver against its frozen baseline.

Times :func:`repro.solver.solve_depth_optimal` (the rewritten A* engine)
and :func:`repro.solver.solve_depth_optimal_reference` (the pre-refactor
implementation) on the paper's discovery instances — the 1x6 line, the
2x4 grid and a 7-qubit Sycamore fragment (Section 3: the sizes the
authors could still solve exactly while looking for structured patterns)
— and **appends** a run record to the ``BENCH_solver.json`` trajectory at
the repository root (see :mod:`repro.bench`).  Workload seeds are pinned
(the instances are deterministic constructions), so successive runs in
the trajectory are directly comparable.

The run **fails** (exit 1) when any instance's depths disagree or when
the node-expansion speedup on the grid instance drops below 3x (the
ISSUE 4 acceptance bar; the engine currently clears it by two orders of
magnitude).

Usage::

    python scripts/bench_solver.py            # full instances (~4 min,
                                              # dominated by the baseline)
    python scripts/bench_solver.py --smoke    # CI-sized instances (~2 s)
    python scripts/bench_solver.py --output /tmp/bench.json
    python scripts/bench_solver.py --label baseline   # tag the record
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch import grid, line  # noqa: E402
from repro.arch.coupling import CouplingGraph  # noqa: E402
from repro.arch.sycamore import sycamore  # noqa: E402
from repro.bench import append_run  # noqa: E402
from repro.problems import biclique, clique  # noqa: E402
from repro.solver import (solve_depth_optimal,  # noqa: E402
                          solve_depth_optimal_reference)

#: Node-expansion speedup the grid instance must clear (ISSUE 4).
GRID_SPEEDUP_THRESHOLD = 3.0


def sycamore_fragment_7q() -> CouplingGraph:
    """The connected 7-qubit fragment of the 2x4 Sycamore tile.

    Dropping qubit 4 from :func:`sycamore(2, 4)` (and relabelling the
    rest contiguously) keeps every remaining qubit connected — dropping
    qubit 7 instead would isolate qubit 3.
    """
    tile = sycamore(2, 4)
    keep = [0, 1, 2, 3, 5, 6, 7]
    relabel = {phys: index for index, phys in enumerate(keep)}
    edges = sorted((relabel[u], relabel[v]) for u, v in tile.edges
                   if u in relabel and v in relabel)
    return CouplingGraph(7, edges, name="sycamore-7q", kind="sycamore")


def instances(smoke: bool):
    """(name, coupling, problem) triples; smoke mode shrinks each family
    one notch so the baseline finishes in CI time."""
    if smoke:
        return [
            ("line-1x5/clique-5", line(5), clique(5)),
            ("grid-2x3/biclique-3x3", grid(2, 3), biclique(3, 3)),
            ("sycamore-7q/clique-4", sycamore_fragment_7q(), clique(4)),
        ]
    return [
        ("line-1x6/clique-6", line(6), clique(6)),
        ("grid-2x4/biclique-4x4", grid(2, 4), biclique(4, 4)),
        ("sycamore-7q/clique-5", sycamore_fragment_7q(), clique(5)),
    ]


def bench_instance(name, coupling, problem, max_nodes):
    t0 = time.perf_counter()
    fast = solve_depth_optimal(coupling, problem.edges, max_nodes=max_nodes)
    fast_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    ref = solve_depth_optimal_reference(coupling, problem.edges,
                                        max_nodes=max_nodes)
    ref_s = time.perf_counter() - t0

    row = {
        "name": name,
        "arch": coupling.name,
        "problem": problem.name,
        "depth": fast.depth,
        "depth_reference": ref.depth,
        "swaps": fast.circuit.swap_count,
        "nodes": fast.stats.nodes_expanded,
        "nodes_reference": ref.stats.nodes_expanded,
        "speedup_nodes": round(
            ref.stats.nodes_expanded / max(1, fast.stats.nodes_expanded), 2),
        "wall_s": round(fast_s, 4),
        "wall_reference_s": round(ref_s, 4),
        "speedup_wall": round(ref_s / max(1e-9, fast_s), 2),
        "stats": fast.stats.as_dict(),
    }
    print(f"{name:28s} depth={row['depth']} "
          f"nodes={row['nodes']} (ref {row['nodes_reference']}, "
          f"{row['speedup_nodes']}x) "
          f"wall={row['wall_s']}s (ref {row['wall_reference_s']}s, "
          f"{row['speedup_wall']}x)", flush=True)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized instances (seconds, not minutes)")
    parser.add_argument("--max-nodes", type=int, default=2_000_000,
                        help="per-run node-expansion budget")
    parser.add_argument("--output", default=str(REPO_ROOT /
                                                "BENCH_solver.json"),
                        help="trajectory file to append the run to")
    parser.add_argument("--label", default="",
                        help="optional run label (e.g. 'baseline')")
    args = parser.parse_args(argv)

    rows = [bench_instance(name, coupling, problem, args.max_nodes)
            for name, coupling, problem in instances(args.smoke)]

    failures = []
    for row in rows:
        if row["depth"] != row["depth_reference"]:
            failures.append(
                f"{row['name']}: depth {row['depth']} != reference "
                f"{row['depth_reference']}")
    grid_rows = [row for row in rows if row["name"].startswith("grid-")]
    grid_speedup = min(row["speedup_nodes"] for row in grid_rows)
    if grid_speedup < GRID_SPEEDUP_THRESHOLD:
        failures.append(
            f"grid node-expansion speedup {grid_speedup}x is below the "
            f"{GRID_SPEEDUP_THRESHOLD}x acceptance bar")

    run = {
        "generated_by": "scripts/bench_solver.py",
        "mode": "smoke" if args.smoke else "full",
        "instances": rows,
        "acceptance": {
            "grid_speedup_nodes": grid_speedup,
            "threshold": GRID_SPEEDUP_THRESHOLD,
            "depths_match": all(
                row["depth"] == row["depth_reference"] for row in rows),
            "ok": not failures,
        },
    }
    if args.label:
        run["label"] = args.label
    trajectory = append_run(args.output, run, benchmark="solver")
    print(f"run {trajectory['runs'][-1]['run_id']} appended to "
          f"{args.output} ({len(trajectory['runs'])} run(s) recorded)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
