#!/usr/bin/env python
"""CI smoke: the p-layer program path end to end (ISSUE 7).

Compiles the NNN-Ising-16 Hamiltonian-simulation benchmark on heavy-hex
into a p=4 program, asserts the reversed-layer cancellation closed the
net permutation, lints the program per layer (zero errors required),
validates the semantic contract, and drives the compile -> simulate ->
TVD loop with a 2-iteration COBYLA optimisation — a fast end-to-end
crossing of every layer ISSUE 7 touched.

Usage::

    python scripts/smoke_qaoa.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch import NoiseModel, architecture_for  # noqa: E402
from repro.compiler import compile_qaoa  # noqa: E402
from repro.ir.validate import validate_program  # noqa: E402
from repro.lint import lint_result  # noqa: E402
from repro.problems import nnn_ising_1d  # noqa: E402
from repro.problems.qaoa import QaoaProblem  # noqa: E402
from repro.sim import QaoaRunner  # noqa: E402

LAYERS = 4
N_LOGICAL = 16
GAMMA = 0.4


def main() -> int:
    failures = []
    problem = nnn_ising_1d(N_LOGICAL)
    coupling = architecture_for("heavyhex", N_LOGICAL)
    noise = NoiseModel(coupling, seed=0)

    result = compile_qaoa(coupling, problem, method="hybrid", gamma=GAMMA,
                          layers=LAYERS)
    program = result.program
    print(f"compiled {problem.name} on {coupling.name}: {program!r}")
    if program is None or program.p != LAYERS:
        failures.append(f"expected a p={LAYERS} program on the result")
    elif not program.net_permutation_is_identity:
        failures.append("even-depth program did not cancel its permutation")

    result.validate(coupling, problem)
    record = validate_program(program)
    print(f"semantic validation ok (per-layer provenance: {record['p']} "
          "cost layers checked)")

    report = lint_result(result, coupling, problem)
    counts = report.counts()
    print(f"lint: {counts['error']} errors / {counts['warning']} warnings "
          f"across {len(program.layers)} layers")
    if not report.ok:
        for diagnostic in report.errors:
            print(f"  {diagnostic.location()}: {diagnostic.message}")
        failures.append("program lint reported errors")

    runner = QaoaRunner(QaoaProblem(problem), result, noise=noise,
                        shots=2000, seed=0)
    value = runner.tvd_vs_ideal([GAMMA] * LAYERS, [0.3] * LAYERS)
    print(f"TVD vs ideal at fixed angles: {value:.4f} (esp={runner.esp:.4f})")
    if not 0.0 <= value <= 1.0:
        failures.append(f"TVD {value} out of range")

    trace = runner.optimize(max_rounds=2)
    print(f"COBYLA smoke: {len(trace.rounds)} rounds, "
          f"best energy {trace.best_energy:.4f}")
    if not trace.rounds:
        failures.append("optimizer executed no rounds")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
