#!/usr/bin/env python
"""CI smoke: the serve daemon end to end (ISSUE 9).

Starts a real ``python -m repro serve --stdio`` subprocess with a fresh
result store and drives a mixed batch over it: distinct specs, repeats
(which must be served from the store without a worker dispatch), and an
identical back-to-back pair (which must dedupe in flight).  Asserts a
positive store hit-rate, byte-identical repeat payloads, and a clean
shutdown.

Usage::

    python scripts/smoke_serve.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

JOBS = [
    {"arch": "grid", "qubits": 16, "method": "greedy", "seed": 0},
    {"arch": "heavyhex", "qubits": 16, "method": "hybrid", "seed": 1},
    {"arch": "line", "qubits": 8, "method": "ata", "workload": "reg"},
]


class Daemon:
    def __init__(self, store: Path) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             "--store", str(store), "--executor", "process",
             "--workers", "2"],
            cwd=REPO_ROOT, env={"PYTHONPATH": str(REPO_ROOT / "src")},
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
        self.next_id = 0

    def send(self, request: dict) -> int:
        self.next_id += 1
        doc = {"id": self.next_id, **request}
        assert self.proc.stdin is not None
        self.proc.stdin.write(json.dumps(doc) + "\n")
        self.proc.stdin.flush()
        return self.next_id

    def read(self) -> dict:
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        if not line:
            raise RuntimeError("daemon closed stdout unexpectedly")
        return json.loads(line)

    def roundtrip(self, request: dict) -> dict:
        rid = self.send(request)
        response = self.read()
        assert response["id"] == rid, (rid, response)
        return response


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        daemon = Daemon(Path(tmp) / "store")

        # Cold batch: every distinct spec compiles on the warm pool.
        cold = [daemon.roundtrip(job) for job in JOBS]
        for response in cold:
            print(f"cold  {response['job']}: "
                  f"served_from={response['served_from']} "
                  f"serve_ms={response['serve_ms']}")
            if not response["ok"] or response["served_from"] != "compiled":
                failures.append(f"cold request not compiled: {response}")

        # Repeats: byte-identical payloads straight from the store.
        for job, was in zip(JOBS[:2], cold):
            again = daemon.roundtrip(job)
            print(f"warm  {again['job']}: "
                  f"served_from={again['served_from']} "
                  f"serve_ms={again['serve_ms']}")
            if again["served_from"] != "store":
                failures.append(f"repeat not served from store: {again}")
            if json.dumps(again["result"], sort_keys=True) \
                    != json.dumps(was["result"], sort_keys=True):
                failures.append(f"store payload differs for {again['job']}")

        # An identical back-to-back pair dedupes to one execution.
        pair = {"arch": "grid", "qubits": 12, "method": "greedy",
                "seed": 7}
        daemon.send(pair)
        daemon.send(pair)
        served = sorted(daemon.read()["served_from"] for _ in range(2))
        if served != ["compiled", "inflight"]:
            failures.append(f"in-flight dedupe not observed: {served}")
        print(f"dedupe pair served_from={served}")

        stats = daemon.roundtrip({"op": "stats"})["stats"]
        print(f"stats: hit_rate={stats['store_hit_rate']:.2f} "
              f"compiled={stats['compiled']} "
              f"dedupe={stats['inflight_dedupe']} "
              f"entries={stats['store']['entries']}")
        if not stats["store_hit_rate"] > 0:
            failures.append(f"store hit-rate not positive: {stats}")
        if stats["inflight_dedupe"] != 1:
            failures.append(f"expected 1 in-flight dedupe: {stats}")

        ack = daemon.roundtrip({"op": "shutdown"})
        if ack != {"id": daemon.next_id, "ok": True, "op": "shutdown"}:
            failures.append(f"unexpected shutdown ack: {ack}")
        code = daemon.proc.wait(timeout=60)
        if code != 0:
            failures.append(f"daemon exited {code}")

    if failures:
        print("\nSMOKE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nserve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
