#!/usr/bin/env python
"""Benchmark the end-to-end ``compile_qaoa`` hot path at paper scale.

Times the hybrid method (the paper's headline configuration: greedy
processing + ATA-suffix candidates + cost-F selection) on pinned
3-regular QAOA workloads over the three architecture families the paper
evaluates — line, grid and heavy-hex — at 256/512/1024 logical qubits
(Section 7's scaling regime), and **appends** a run record to the
``BENCH_compiler.json`` trajectory at the repository root (see
:mod:`repro.bench`).  Problem seeds are pinned so successive runs are
directly comparable; each row records wall-clock, greedy cycles, depth,
CX count and SWAP count.

Acceptance (ISSUE 6): the latest full run must clear a **>= 5x**
wall-clock speedup on the 1024-qubit grid sweep against the trajectory's
``baseline``-labelled full run (the pre-optimization compiler, recorded
on the same machine).  A run labelled ``baseline`` records the reference
point and is exempt from the gate.  Smoke mode (CI) compiles reduced
sizes under a generous absolute wall budget and re-validates the
committed trajectory's acceptance block — machine-independent checks
that fail the job when the gate regresses.

Usage::

    python scripts/bench_compiler.py                  # full sweep
    python scripts/bench_compiler.py --label baseline # record the baseline
    python scripts/bench_compiler.py --smoke          # CI-sized (64/128q)
    python scripts/bench_compiler.py --output /tmp/bench.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch import grid, line  # noqa: E402
from repro.arch.heavyhex import heavyhex_for  # noqa: E402
from repro.bench import append_run, baseline_run, latest_run  # noqa: E402
from repro.bench import read_trajectory  # noqa: E402
from repro.compiler import compile_qaoa  # noqa: E402
from repro.problems.graphs import regular_problem_graph  # noqa: E402

#: Wall-clock speedup the 1024q grid sweep must clear vs the baseline.
GRID_1024_SPEEDUP_THRESHOLD = 5.0

#: The instance the acceptance gate is measured on.
GATE_INSTANCE = "grid-32x32/reg-1024-d3-s11"

#: Pinned workload seed (3-regular problems, the paper's sparse regime).
PROBLEM_SEED = 11
PROBLEM_DEGREE = 3

#: Per-instance wall budget in smoke mode (generous: post-optimization
#: 128q compiles take well under a second; this only catches blowups).
SMOKE_WALL_BUDGET_S = 60.0

#: (n_logical, grid_rows, grid_cols) per mode.
FULL_SIZES = ((256, 16, 16), (512, 16, 32), (1024, 32, 32))
SMOKE_SIZES = ((64, 8, 8), (128, 8, 16))


def instances(smoke: bool):
    """(name, coupling, problem, layers) over line/grid/heavy-hex.

    Smoke mode additionally times a p=2 grid instance so the program
    assembly (reversed-layer cancellation) stays on the CI hot path.
    """
    out = []
    for n, rows, cols in (SMOKE_SIZES if smoke else FULL_SIZES):
        problem = regular_problem_graph(n, PROBLEM_DEGREE,
                                        seed=PROBLEM_SEED)
        for coupling in (line(n), grid(rows, cols), heavyhex_for(n)):
            out.append((f"{coupling.name}/{problem.name}", coupling,
                        problem, 1))
    if smoke:
        n, rows, cols = SMOKE_SIZES[0]
        problem = regular_problem_graph(n, PROBLEM_DEGREE,
                                        seed=PROBLEM_SEED)
        coupling = grid(rows, cols)
        out.append((f"{coupling.name}/{problem.name}-p2", coupling,
                    problem, 2))
    return out


def bench_instance(name, coupling, problem, layers=1):
    t0 = time.perf_counter()
    result = compile_qaoa(coupling, problem, method="hybrid", gamma=0.4,
                          layers=layers)
    wall_s = time.perf_counter() - t0
    row = {
        "name": name,
        "arch": coupling.name,
        "problem": problem.name,
        "n_logical": problem.n_vertices,
        "n_physical": coupling.n_qubits,
        "method": "hybrid",
        "layers": layers,
        "wall_s": round(wall_s, 4),
        "cycles": result.extra.get("greedy_cycles"),
        "depth": result.depth(),
        "cx": result.circuit.cx_count(unify=True),
        "swaps": result.swap_count,
        "selected": result.extra.get("selected"),
    }
    if layers > 1 and result.program is not None:
        row["program_ops"] = result.program.n_ops()
        row["program_identity"] = result.program.net_permutation_is_identity
    print(f"{name:32s} wall={row['wall_s']:8.3f}s cycles={row['cycles']:4} "
          f"depth={row['depth']:4d} cx={row['cx']:6d} "
          f"swaps={row['swaps']:6d} [{row['selected']}]", flush=True)
    return row


def check_full_gate(trajectory, this_run) -> list:
    """Latest full run vs the baseline full run on the gate instance."""
    failures = []
    base = baseline_run(trajectory, mode="full")
    if base is None or base["run_id"] == this_run["run_id"]:
        print("no prior full baseline — this run is the reference point")
        return failures
    base_row = {r["name"]: r for r in base["instances"]}.get(GATE_INSTANCE)
    this_row = {r["name"]: r
                for r in this_run["instances"]}.get(GATE_INSTANCE)
    if base_row is None or this_row is None:
        failures.append(f"gate instance {GATE_INSTANCE} missing from "
                        "baseline or current run")
        return failures
    speedup = base_row["wall_s"] / max(1e-9, this_row["wall_s"])
    print(f"gate: {GATE_INSTANCE} {base_row['wall_s']}s -> "
          f"{this_row['wall_s']}s ({speedup:.2f}x, "
          f"threshold {GRID_1024_SPEEDUP_THRESHOLD}x)")
    this_run["acceptance"] = {
        "gate_instance": GATE_INSTANCE,
        "baseline_run_id": base["run_id"],
        "baseline_wall_s": base_row["wall_s"],
        "wall_s": this_row["wall_s"],
        "speedup_wall": round(speedup, 2),
        "threshold": GRID_1024_SPEEDUP_THRESHOLD,
        "ok": speedup >= GRID_1024_SPEEDUP_THRESHOLD,
    }
    if speedup < GRID_1024_SPEEDUP_THRESHOLD:
        failures.append(
            f"{GATE_INSTANCE} wall-clock speedup {speedup:.2f}x is below "
            f"the {GRID_1024_SPEEDUP_THRESHOLD}x acceptance bar")
    return failures


def check_committed_trajectory(path: Path) -> list:
    """CI cross-check: the committed trajectory must clear its own gate."""
    failures = []
    if not path.exists():
        failures.append(f"committed trajectory {path} is missing")
        return failures
    trajectory = read_trajectory(path, "compiler")
    full = latest_run(trajectory, mode="full")
    if full is None:
        failures.append(f"{path} has no full run recorded")
        return failures
    acceptance = full.get("acceptance")
    if not acceptance:
        failures.append(f"{path} latest full run (run {full['run_id']}) "
                        "carries no acceptance block")
    elif not acceptance.get("ok"):
        failures.append(
            f"{path} latest full run records speedup "
            f"{acceptance.get('speedup_wall')}x < "
            f"{acceptance.get('threshold')}x on "
            f"{acceptance.get('gate_instance')}")
    else:
        print(f"committed gate ok: {acceptance['speedup_wall']}x on "
              f"{acceptance['gate_instance']} (run {full['run_id']})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized instances (64/128q, seconds)")
    parser.add_argument("--output", default=str(REPO_ROOT /
                                                "BENCH_compiler.json"),
                        help="trajectory file to append the run to")
    parser.add_argument("--label", default="",
                        help="optional run label (e.g. 'baseline')")
    parser.add_argument("--wall-budget", type=float,
                        default=SMOKE_WALL_BUDGET_S,
                        help="per-instance wall budget in smoke mode")
    args = parser.parse_args(argv)

    rows = [bench_instance(name, coupling, problem, layers)
            for name, coupling, problem, layers in instances(args.smoke)]

    run = {
        "generated_by": "scripts/bench_compiler.py",
        "mode": "smoke" if args.smoke else "full",
        "method": "hybrid",
        "problem_seed": PROBLEM_SEED,
        "problem_degree": PROBLEM_DEGREE,
        "instances": rows,
    }
    if args.label:
        run["label"] = args.label

    failures = []
    if args.smoke:
        for row in rows:
            if row["wall_s"] > args.wall_budget:
                failures.append(
                    f"{row['name']}: wall {row['wall_s']}s exceeds the "
                    f"{args.wall_budget}s smoke budget")
        failures.extend(
            check_committed_trajectory(REPO_ROOT / "BENCH_compiler.json"))
        run["acceptance"] = {"wall_budget_s": args.wall_budget,
                             "ok": not failures}
        append_run(args.output, run, benchmark="compiler")
    else:
        # Append first so the gate compares records of the same file,
        # then rewrite with the acceptance block filled in.
        trajectory = append_run(args.output, run, benchmark="compiler")
        this_run = trajectory["runs"][-1]
        failures.extend(check_full_gate(trajectory, this_run))
        import json
        Path(args.output).write_text(
            json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")

    print(f"run appended to {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
